// Nonblocking collectives: bitwise agreement with the blocking algorithms,
// multiple in-flight operations with out-of-order completion, tag isolation
// (between concurrent ops and against blocking traffic), zero-length
// buffers, and the CollectiveEngine's FIFO drain.
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/nonblocking.hpp"
#include "support/rng.hpp"

namespace distconv::comm {
namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// The nonblocking allreduce must produce the bitwise-identical result to
/// the blocking call for every algorithm the kAuto dispatcher can pick:
/// recursive doubling (small n), ring (large n), and the ring → recursive
/// doubling fallback (n < p).
TEST(Nonblocking, IallreduceBitwiseMatchesBlocking) {
  for (const int p : {2, 3, 4, 5, 8}) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{3}, std::size_t{257}, std::size_t{8192}}) {
      World world(p);
      world.run([n, p](Comm& comm) {
        std::vector<float> blocking =
            random_floats(n, 17 * static_cast<std::uint64_t>(comm.rank() + 1));
        std::vector<float> nonblocking = blocking;

        allreduce(comm, blocking.data(), n, ReduceOp::kSum);

        CollectiveEngine engine;
        engine.enqueue(
            make_iallreduce(comm, nonblocking.data(), n, ReduceOp::kSum));
        engine.drain();
        EXPECT_TRUE(engine.idle());
        EXPECT_TRUE(bitwise_equal(blocking, nonblocking))
            << "p=" << p << " n=" << n << " rank=" << comm.rank();
      });
    }
  }
}

TEST(Nonblocking, ExplicitAlgorithmsMatchBlocking) {
  World world(4);
  world.run([](Comm& comm) {
    const std::size_t n = 4096;  // above the p=4 ring minimum either way
    for (const auto algo :
         {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing}) {
      std::vector<float> blocking =
          random_floats(n, 3 * static_cast<std::uint64_t>(comm.rank() + 1));
      std::vector<float> nonblocking = blocking;
      allreduce(comm, blocking.data(), n, ReduceOp::kMax, algo);

      CollectiveEngine engine;
      engine.enqueue(
          make_iallreduce(comm, nonblocking.data(), n, ReduceOp::kMax, algo));
      engine.drain();
      EXPECT_TRUE(bitwise_equal(blocking, nonblocking));
    }
  });
}

/// The nonblocking reduce_scatterv must produce bitwise-identical per-rank
/// blocks to the blocking ring for uneven and zero-sized blocks, both with
/// caller-side pre-packing and with the lazy per-block pack callback the
/// channel-parallel forward uses to pipeline packing with the rounds.
TEST(Nonblocking, IreduceScattervBitwiseMatchesBlocking) {
  struct Case {
    int p;
    std::vector<std::size_t> counts;
  };
  const std::vector<Case> cases{
      {2, {5, 3}},
      {3, {4, 0, 7}},            // zero-sized block rides the ring
      {4, {1000, 1, 37, 512}},   // heavily uneven
      {4, {0, 0, 9, 0}},         // mostly empty
      {5, {11, 13, 17, 19, 23}},
  };
  for (const auto& c : cases) {
    World world(c.p);
    world.run([&c](Comm& comm) {
      std::size_t total = 0;
      for (auto n : c.counts) total += n;
      const std::vector<float> init =
          random_floats(total, 29 * static_cast<std::uint64_t>(comm.rank() + 1));

      std::vector<float> blocking = init;
      reduce_scatterv_inplace(comm, blocking.data(), c.counts, ReduceOp::kSum);

      for (const bool lazy_pack : {false, true}) {
        std::vector<float> nb =
            lazy_pack ? std::vector<float>(total, 0.0f) : init;
        std::vector<std::size_t> displs(c.counts.size());
        std::size_t off = 0;
        for (std::size_t b = 0; b < c.counts.size(); ++b) {
          displs[b] = off;
          off += c.counts[b];
        }
        NbReduceScattervInplace<float>::PackFn pack;
        if (lazy_pack) {
          pack = [&](int b) {
            std::copy(init.begin() + displs[b],
                      init.begin() + displs[b] + c.counts[b],
                      nb.begin() + displs[b]);
          };
        }
        CollectiveEngine engine;
        engine.enqueue(std::make_unique<NbReduceScattervInplace<float>>(
            comm, nb.data(), c.counts, ReduceOp::kSum, pack));
        engine.drain();
        EXPECT_TRUE(engine.idle());
        // Only rank me's block is defined output; compare it bitwise.
        const int me = comm.rank();
        EXPECT_EQ(0, std::memcmp(blocking.data() + displs[me],
                                 nb.data() + displs[me],
                                 c.counts[me] * sizeof(float)))
            << "p=" << c.p << " rank=" << me << " lazy=" << lazy_pack;
      }
    });
  }
}

TEST(Nonblocking, IreduceScattervSingleRank) {
  World world(1);
  world.run([](Comm& comm) {
    std::vector<float> v{1.0f, 2.0f, 3.0f};
    bool packed = false;
    CollectiveEngine engine;
    engine.enqueue(std::make_unique<NbReduceScattervInplace<float>>(
        comm, v.data(), std::vector<std::size_t>{3}, ReduceOp::kSum,
        [&packed](int b) {
          EXPECT_EQ(b, 0);
          packed = true;
        }));
    EXPECT_TRUE(engine.idle());  // completes inside enqueue()
    EXPECT_TRUE(packed);         // the owner's block is still packed
  });
}

TEST(Nonblocking, ZeroLengthBuffersCompleteImmediately) {
  World world(3);
  world.run([](Comm& comm) {
    CollectiveEngine engine;
    engine.enqueue(
        make_iallreduce<float>(comm, nullptr, 0, ReduceOp::kSum));
    EXPECT_TRUE(engine.idle());  // trivial op retires inside enqueue()
    engine.drain();
  });
}

TEST(Nonblocking, SingleRankCompletesImmediately) {
  World world(1);
  world.run([](Comm& comm) {
    std::vector<float> v{1.0f, 2.0f, 3.0f};
    const std::vector<float> expect = v;
    CollectiveEngine engine;
    engine.enqueue(make_iallreduce(comm, v.data(), v.size(), ReduceOp::kSum));
    EXPECT_TRUE(engine.idle());
    EXPECT_TRUE(bitwise_equal(v, expect));
  });
}

/// Two operations in flight at once on the same communicator, progressed in
/// a rank-dependent interleaving so completion order differs across ranks.
/// Tags are allocated in SPMD order at construction, so the concurrent
/// messages cannot cross-match — each op still reduces its own payload.
/// The nonblocking broadcast (the serving loop's double-buffered input
/// prefetch) must deliver bitwise-identical bytes to the blocking binomial
/// tree from every root, including non-power-of-two worlds and rank counts
/// where some vranks have no children.
TEST(Nonblocking, IbroadcastBitwiseMatchesBlocking) {
  for (const int p : {1, 2, 3, 4, 5, 8}) {
    for (int root = 0; root < p; root += std::max(1, p - 1)) {
      World world(p);
      world.run([p, root](Comm& comm) {
        const std::size_t n = 517;
        std::vector<float> blocking =
            comm.rank() == root ? random_floats(n, 23) : std::vector<float>(n);
        std::vector<float> nonblocking = blocking;

        broadcast(comm, blocking.data(), n, root);

        CollectiveEngine engine;
        engine.enqueue(std::make_unique<NbBroadcast<float>>(
            comm, nonblocking.data(), n, root));
        engine.drain();
        EXPECT_TRUE(engine.idle());
        EXPECT_TRUE(bitwise_equal(blocking, nonblocking))
            << "p=" << p << " root=" << root << " rank=" << comm.rank();
      });
    }
  }
}

TEST(Nonblocking, IbroadcastZeroLengthCompletesImmediately) {
  World world(3);
  world.run([](Comm& comm) {
    CollectiveEngine engine;
    engine.enqueue(
        std::make_unique<NbBroadcast<float>>(comm, nullptr, 0, /*root=*/1));
    engine.drain();
    EXPECT_TRUE(engine.idle());
  });
}

TEST(Nonblocking, InFlightOpsCompleteOutOfOrder) {
  World world(4);
  world.run([](Comm& comm) {
    const std::size_t n = 64;
    std::vector<float> a =
        random_floats(n, 100 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> b =
        random_floats(n, 200 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> a_ref = a, b_ref = b;
    allreduce(comm, a_ref.data(), n, ReduceOp::kSum);
    allreduce(comm, b_ref.data(), n, ReduceOp::kSum);

    // Both ops constructed (tags drawn) and started on every rank before
    // either is progressed — both are genuinely on the wire.
    auto op_a = make_iallreduce(comm, a.data(), n, ReduceOp::kSum);
    auto op_b = make_iallreduce(comm, b.data(), n, ReduceOp::kSum);
    op_a->start();
    op_b->start();

    // Even ranks poll (b, a), odd ranks poll (a, b): under contention the
    // finish order can differ per rank; both must still be exact.
    NbOp* first = comm.rank() % 2 == 0 ? op_b.get() : op_a.get();
    NbOp* second = comm.rank() % 2 == 0 ? op_a.get() : op_b.get();
    while (!first->done() || !second->done()) {
      first->progress();
      second->progress();
    }
    EXPECT_TRUE(bitwise_equal(a, a_ref));
    EXPECT_TRUE(bitwise_equal(b, b_ref));
  });
}

/// Blocking collectives may run on the same communicator while nonblocking
/// ops are in flight: internal tags are distinct, so neither steals the
/// other's messages.
TEST(Nonblocking, InFlightOpIsolatedFromBlockingTraffic) {
  World world(4);
  world.run([](Comm& comm) {
    const std::size_t n = 512;
    std::vector<float> v =
        random_floats(n, 7 * static_cast<std::uint64_t>(comm.rank() + 1));
    std::vector<float> ref = v;
    allreduce(comm, ref.data(), n, ReduceOp::kSum);

    auto op = make_iallreduce(comm, v.data(), n, ReduceOp::kSum);
    op->start();

    // A blocking allreduce and a barrier complete while `op` is pending.
    double x = comm.rank();
    allreduce(comm, &x, 1, ReduceOp::kSum);
    const int p = comm.size();
    EXPECT_DOUBLE_EQ(x, p * (p - 1) / 2.0);
    barrier(comm);

    while (!op->progress()) op->wait_progress();
    EXPECT_TRUE(bitwise_equal(v, ref));
  });
}

TEST(Nonblocking, IallgathervMatchesBlockingWithUnevenAndEmptyBlocks) {
  World world(4);
  world.run([](Comm& comm) {
    const int p = comm.size();
    // Rank r contributes r * 3 elements — rank 0 contributes none.
    std::vector<std::size_t> counts(p), displs(p);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[r] = static_cast<std::size_t>(r) * 3;
      displs[r] = total;
      total += counts[r];
    }
    const std::size_t mine = counts[comm.rank()];
    std::vector<float> send =
        random_floats(mine, 31 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> ref(total), got(total);
    allgatherv(comm, send.data(), mine, ref.data(), counts, displs);

    CollectiveEngine engine;
    engine.enqueue(std::make_unique<NbAllgatherv<float>>(
        comm, send.data(), mine, got.data(), counts, displs));
    engine.drain();
    EXPECT_TRUE(bitwise_equal(got, ref));
  });
}

/// The engine keeps strict FIFO per rank: a burst of mixed-size, mixed-op
/// enqueues (small recursive-doubling, large ring, an allgatherv) drains to
/// the same results as the blocking sequence.
TEST(Nonblocking, EngineDrainsMixedBurstFifo) {
  World world(3);
  world.run([](Comm& comm) {
    const std::size_t sizes[] = {5, 6000, 17, 0, 1024};
    std::vector<std::vector<float>> bufs, refs;
    for (std::size_t k = 0; k < std::size(sizes); ++k) {
      bufs.push_back(random_floats(
          sizes[k], (k + 1) * 1000 + static_cast<std::uint64_t>(comm.rank())));
      refs.push_back(bufs.back());
      allreduce(comm, refs.back().data(), refs.back().size(), ReduceOp::kSum);
    }
    CollectiveEngine engine;
    for (auto& buf : bufs) {
      engine.enqueue(
          make_iallreduce(comm, buf.data(), buf.size(), ReduceOp::kSum));
    }
    EXPECT_GE(std::size(sizes), engine.pending_ops());
    engine.drain();
    EXPECT_TRUE(engine.idle());
    for (std::size_t k = 0; k < bufs.size(); ++k) {
      EXPECT_TRUE(bitwise_equal(bufs[k], refs[k])) << "op " << k;
    }
  });
}

/// Ops on split sub-communicators progress independently of the parent's
/// wire: contexts differ, so an op per subgroup plus one on the parent can
/// all be in flight.
TEST(Nonblocking, SubCommunicatorOpsRunConcurrently) {
  World world(4);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 2, comm.rank());
    const std::size_t n = 128;
    std::vector<float> on_world =
        random_floats(n, 400 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> on_half =
        random_floats(n, 500 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> world_ref = on_world, half_ref = on_half;
    allreduce(comm, world_ref.data(), n, ReduceOp::kSum);
    allreduce(half, half_ref.data(), n, ReduceOp::kSum);

    auto wop = make_iallreduce(comm, on_world.data(), n, ReduceOp::kSum);
    auto hop = make_iallreduce(half, on_half.data(), n, ReduceOp::kSum);
    wop->start();
    hop->start();
    while (!wop->done() || !hop->done()) {
      wop->progress();
      hop->progress();
    }
    EXPECT_TRUE(bitwise_equal(on_world, world_ref));
    EXPECT_TRUE(bitwise_equal(on_half, half_ref));
  });
}

}  // namespace
}  // namespace distconv::comm
