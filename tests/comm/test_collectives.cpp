#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "support/rng.hpp"

namespace distconv::comm {
namespace {

// Many collectives are exercised over a sweep of world sizes, including
// non-powers of two, which stress the pof2 fixups.
class CollectiveSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST_P(CollectiveSizes, Barrier) {
  World world(GetParam());
  world.run([](Comm& comm) {
    for (int i = 0; i < 3; ++i) barrier(comm);
  });
}

TEST_P(CollectiveSizes, BroadcastFromEveryRoot) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> buf(17, comm.rank() == root ? root + 1000 : -1);
      broadcast(comm, buf.data(), buf.size(), root);
      for (int v : buf) EXPECT_EQ(v, root + 1000);
    }
  });
}

TEST_P(CollectiveSizes, ReduceSumToEveryRoot) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<double> buf(9);
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = comm.rank() + i;
      reduce(comm, buf.data(), buf.size(), ReduceOp::kSum, root);
      if (comm.rank() == root) {
        const double rank_sum = p * (p - 1) / 2.0;
        for (std::size_t i = 0; i < buf.size(); ++i) {
          EXPECT_DOUBLE_EQ(buf[i], rank_sum + p * double(i));
        }
      }
    }
  });
}

TEST_P(CollectiveSizes, AllgatherOrdersByRank) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<int> mine(3, comm.rank());
    std::vector<int> all(3 * p, -1);
    allgather(comm, mine.data(), mine.size(), all.data());
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 3; ++i) EXPECT_EQ(all[r * 3 + i], r);
    }
  });
}

TEST_P(CollectiveSizes, AllgathervVariableSizes) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r contributes r + 1 elements, all equal to r.
    std::vector<std::size_t> counts(p), displs(p);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[r] = r + 1;
      displs[r] = total;
      total += counts[r];
    }
    std::vector<int> mine(comm.rank() + 1, comm.rank());
    std::vector<int> all(total, -1);
    allgatherv(comm, mine.data(), mine.size(), all.data(), counts, displs);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < counts[r]; ++i) {
        EXPECT_EQ(all[displs[r] + i], r);
      }
    }
  });
}

class AllreduceCase
    : public ::testing::TestWithParam<std::tuple<int, int, AllreduceAlgo>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceCase,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13),
                       ::testing::Values(1, 7, 64, 1000),
                       ::testing::Values(AllreduceAlgo::kRecursiveDoubling,
                                         AllreduceAlgo::kRing,
                                         AllreduceAlgo::kAuto)));

TEST_P(AllreduceCase, SumMatchesAnalytic) {
  const auto [p, n, algo] = GetParam();
  World world(p);
  world.run([p, n, algo](Comm& comm) {
    std::vector<double> buf(n);
    for (int i = 0; i < n; ++i) buf[i] = (comm.rank() + 1) * 0.5 + i;
    allreduce(comm, buf.data(), buf.size(), ReduceOp::kSum, algo);
    const double rank_part = 0.5 * p * (p + 1) / 2.0;
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(buf[i], rank_part + double(i) * p, 1e-9) << "i=" << i;
    }
  });
}

TEST_P(AllreduceCase, MaxPicksLargest) {
  const auto [p, n, algo] = GetParam();
  World world(p);
  world.run([p, n, algo](Comm& comm) {
    std::vector<double> buf(n);
    for (int i = 0; i < n; ++i) buf[i] = comm.rank() * 10.0 + i;
    allreduce(comm, buf.data(), buf.size(), ReduceOp::kMax, algo);
    for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(buf[i], (p - 1) * 10.0 + i);
  });
}

TEST(Allreduce, MinAndProd) {
  World world(4);
  world.run([](Comm& comm) {
    std::vector<float> mn{float(comm.rank() + 1)};
    allreduce(comm, mn.data(), 1, ReduceOp::kMin);
    EXPECT_FLOAT_EQ(mn[0], 1.0f);
    std::vector<float> pr{2.0f};
    allreduce(comm, pr.data(), 1, ReduceOp::kProd);
    EXPECT_FLOAT_EQ(pr[0], 16.0f);
  });
}

TEST(Allreduce, ResultsBitwiseIdenticalAcrossRanks) {
  // SGD requires replicated weights to stay replicated: every rank must get
  // exactly the same reduction result.
  for (auto algo : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing}) {
    World world(6);
    world.run([algo](Comm& comm) {
      std::vector<float> buf(257);
      Rng rng(99, comm.rank());
      for (auto& v : buf) v = static_cast<float>(rng.normal());
      allreduce(comm, buf.data(), buf.size(), ReduceOp::kSum, algo);
      // Gather rank 0's result and compare bitwise.
      std::vector<float> reference = buf;
      broadcast(comm, reference.data(), reference.size(), 0);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(buf[i], reference[i]) << "algo mismatch at " << i;
      }
    });
  }
}

TEST_P(CollectiveSizes, ReduceScatterInplaceOwnedBlock) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    const std::size_t n = 23;  // not divisible by most p
    if (n < static_cast<std::size_t>(p)) return;
    std::vector<double> buf(n);
    for (std::size_t i = 0; i < n; ++i) buf[i] = comm.rank() + double(i);
    reduce_scatter_inplace(comm, buf.data(), n, ReduceOp::kSum);
    const auto [s, e] = internal::block_range(n, p, comm.rank());
    const double rank_sum = p * (p - 1) / 2.0;
    for (std::size_t i = s; i < e; ++i) {
      EXPECT_NEAR(buf[i], rank_sum + double(i) * p, 1e-9);
    }
  });
}

TEST_P(CollectiveSizes, AlltoallvTransposesRankData) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r sends value r*p + d to destination d.
    std::vector<int> send(p), recv(p, -1);
    std::vector<std::size_t> counts(p, 1), displs(p);
    for (int d = 0; d < p; ++d) {
      send[d] = comm.rank() * p + d;
      displs[d] = d;
    }
    alltoallv(comm, send.data(), counts, displs, recv.data(), counts, displs);
    for (int s = 0; s < p; ++s) EXPECT_EQ(recv[s], s * p + comm.rank());
  });
}

TEST(Alltoallv, VariableAndZeroCounts) {
  const int p = 4;
  World world(p);
  world.run([p](Comm& comm) {
    // Rank r sends r copies of its rank to each destination with d > r,
    // nothing otherwise.
    std::vector<std::size_t> sc(p), sd(p), rc(p), rd(p);
    std::size_t stot = 0, rtot = 0;
    for (int d = 0; d < p; ++d) {
      sc[d] = d > comm.rank() ? comm.rank() : 0;
      sd[d] = stot;
      stot += sc[d];
      rc[d] = comm.rank() > d ? d : 0;
      rd[d] = rtot;
      rtot += rc[d];
    }
    std::vector<int> send(stot, comm.rank()), recv(rtot, -1);
    alltoallv(comm, send.data(), sc, sd, recv.data(), rc, rd);
    for (int s = 0; s < p; ++s) {
      for (std::size_t i = 0; i < rc[s]; ++i) EXPECT_EQ(recv[rd[s] + i], s);
    }
  });
}

TEST_P(CollectiveSizes, GathervAndScattervRoundTrip) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    std::vector<std::size_t> counts(p), displs(p);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[r] = 2 * r + 1;
      displs[r] = total;
      total += counts[r];
    }
    std::vector<int> mine(counts[comm.rank()], comm.rank() + 7);
    std::vector<int> gathered(comm.rank() == 0 ? total : 0);
    gatherv(comm, mine.data(), mine.size(), gathered.data(), counts, displs, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < counts[r]; ++i) {
          EXPECT_EQ(gathered[displs[r] + i], r + 7);
        }
      }
    }
    // Scatter back doubled values.
    if (comm.rank() == 0) {
      for (auto& v : gathered) v *= 2;
    }
    std::vector<int> back(counts[comm.rank()], -1);
    scatterv(comm, gathered.data(), counts, displs, back.data(), back.size(), 0);
    for (auto v : back) EXPECT_EQ(v, (comm.rank() + 7) * 2);
  });
}

TEST(CollectiveStats, RingAllreduceBandwidthOptimalVolume) {
  // Ring allreduce moves 2(p-1)/p · n elements per rank; validate the total
  // against the counter (this is the β term of the Thakur model).
  const int p = 4;
  const std::size_t n = 1024;
  World world(p);
  world.reset_stats();
  world.run([n](Comm& comm) {
    std::vector<float> buf(n, 1.0f);
    allreduce_ring(comm, buf.data(), n, ReduceOp::kSum);
  });
  const CommStats s = world.stats();
  // reduce-scatter: (p-1) block sends per rank + 1 fixup, allgather: (p-1).
  // Total volume ≈ 2 n (p-1) + n extra for the fixup rotation.
  const std::uint64_t lower = 2ull * n * (p - 1) * sizeof(float);
  const std::uint64_t upper = lower + (n + p) * sizeof(float) * 2;
  EXPECT_GE(s.bytes, lower);
  EXPECT_LE(s.bytes, upper);
}

TEST_P(CollectiveSizes, ReduceScattervUnevenBlocks) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Block b holds b + 1 elements — never balanced, exercising the explicit
    // per-rank counts (the channel-parallel filter slices have this shape).
    std::vector<std::size_t> counts(p), displs(p);
    std::size_t total = 0;
    for (int b = 0; b < p; ++b) {
      counts[b] = b + 1;
      displs[b] = total;
      total += counts[b];
    }
    std::vector<double> buf(total);
    for (std::size_t i = 0; i < total; ++i) buf[i] = comm.rank() + double(i);
    reduce_scatterv_inplace(comm, buf.data(), counts, ReduceOp::kSum);
    const double rank_sum = p * (p - 1) / 2.0;
    for (std::size_t i = 0; i < counts[comm.rank()]; ++i) {
      const std::size_t g = displs[comm.rank()] + i;
      EXPECT_NEAR(buf[g], rank_sum + double(g) * p, 1e-9) << "i=" << g;
    }
  });
}

TEST(ReduceScatterv, ZeroSizedBlocksRideTheRing) {
  // Filter counts smaller than the channel group leave trailing empty
  // slices; the ring must pass them through as empty messages.
  const int p = 4;
  World world(p);
  world.run([p](Comm& comm) {
    const std::vector<std::size_t> counts{3, 2, 0, 0};
    std::vector<float> buf{1, 2, 3, 10, 20};
    for (auto& v : buf) v += float(comm.rank());
    reduce_scatterv_inplace(comm, buf.data(), counts, ReduceOp::kSum);
    const float rank_sum = p * (p - 1) / 2.0f;
    const float base[] = {1, 2, 3, 10, 20};
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(buf[i], p * base[i] + rank_sum);
    }
    if (comm.rank() == 1) {
      for (int i = 3; i < 5; ++i) EXPECT_FLOAT_EQ(buf[i], p * base[i] + rank_sum);
    }
  });
}

// The channel-parallel engine runs its collectives on *subgroup*
// communicators obtained by splitting the world — including singleton and
// non-power-of-two groups (e.g. 3-way channel splits). Exercise every
// collective the channel path uses inside such groups, concurrently across
// groups.
class SubgroupCollectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(WorldSizes, SubgroupCollectives,
                         ::testing::Values(3, 5, 6, 7, 10));

TEST_P(SubgroupCollectives, ChannelGroupShapedCollectives) {
  const int p = GetParam();
  World world(p);
  world.run([p](Comm& comm) {
    // Group 0 is a singleton; the rest split into a group of ⌈(p-1)/2⌉ and a
    // group of ⌊(p-1)/2⌋ — non-power-of-two for most p.
    const int color = comm.rank() == 0 ? 0 : 1 + (comm.rank() - 1) % 2;
    Comm sub = comm.split(color, comm.rank());
    const int sp = sub.size();

    // Both allreduce variants.
    for (auto algo : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing}) {
      std::vector<double> buf(37);
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = sub.rank() + double(i);
      allreduce(sub, buf.data(), buf.size(), ReduceOp::kSum, algo);
      const double rank_sum = sp * (sp - 1) / 2.0;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_NEAR(buf[i], rank_sum + double(i) * sp, 1e-9);
      }
    }

    // reduce_scatter_inplace (balanced blocks).
    {
      const std::size_t n = 29;
      if (n >= static_cast<std::size_t>(sp)) {
        std::vector<double> buf(n);
        for (std::size_t i = 0; i < n; ++i) buf[i] = sub.rank() + double(i);
        reduce_scatter_inplace(sub, buf.data(), n, ReduceOp::kSum);
        const auto [s, e] = internal::block_range(n, sp, sub.rank());
        const double rank_sum = sp * (sp - 1) / 2.0;
        for (std::size_t i = s; i < e; ++i) {
          ASSERT_NEAR(buf[i], rank_sum + double(i) * sp, 1e-9);
        }
      }
    }

    // reduce_scatterv_inplace (uneven blocks, like filter slices).
    {
      std::vector<std::size_t> counts(sp), displs(sp);
      std::size_t total = 0;
      for (int b = 0; b < sp; ++b) {
        counts[b] = (b % 2 == 0) ? 4 : 1;
        displs[b] = total;
        total += counts[b];
      }
      std::vector<double> buf(total);
      for (std::size_t i = 0; i < total; ++i) buf[i] = sub.rank() + double(i);
      reduce_scatterv_inplace(sub, buf.data(), counts, ReduceOp::kSum);
      const double rank_sum = sp * (sp - 1) / 2.0;
      for (std::size_t i = 0; i < counts[sub.rank()]; ++i) {
        const std::size_t g = displs[sub.rank()] + i;
        ASSERT_NEAR(buf[g], rank_sum + double(g) * sp, 1e-9);
      }
    }

    // allgatherv (uneven contributions).
    {
      std::vector<std::size_t> counts(sp), displs(sp);
      std::size_t total = 0;
      for (int r = 0; r < sp; ++r) {
        counts[r] = r + 1;
        displs[r] = total;
        total += counts[r];
      }
      std::vector<int> mine(sub.rank() + 1, sub.rank() * 100 + color);
      std::vector<int> all(total, -1);
      allgatherv(sub, mine.data(), mine.size(), all.data(), counts, displs);
      for (int r = 0; r < sp; ++r) {
        for (std::size_t i = 0; i < counts[r]; ++i) {
          ASSERT_EQ(all[displs[r] + i], r * 100 + color);
        }
      }
    }
  });
}

}  // namespace
}  // namespace distconv::comm
