#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/comm.hpp"
#include "support/error.hpp"

namespace distconv::comm {
namespace {

TEST(P2P, BlockingSendRecv) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 1234;
      comm.send(&v, 1, 1, 7);
    } else {
      int v = 0;
      comm.recv(&v, 1, 0, 7);
      EXPECT_EQ(v, 1234);
    }
  });
}

TEST(P2P, SendBeforeRecvIsBuffered) {
  // Eager protocol: sends complete immediately, receiver picks up later.
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(&i, 1, 1, i);
    } else {
      // Receive in reverse tag order to exercise matching by tag.
      for (int i = 9; i >= 0; --i) {
        int v = -1;
        comm.recv(&v, 1, 0, i);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, NonOvertakingSameTag) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(&i, 1, 1, 5);
    } else {
      for (int i = 0; i < 100; ++i) {
        int v = -1;
        comm.recv(&v, 1, 0, 5);
        EXPECT_EQ(v, i);  // arrival order preserved
      }
    }
  });
}

TEST(P2P, WildcardSourceAndTag) {
  World world(3);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        Request r = comm.irecv(&v, sizeof(int), kAnySource, kAnyTag);
        r.wait();
        seen += v;
      }
      EXPECT_EQ(seen, 1 + 2);
    } else {
      const int v = comm.rank();
      comm.send(&v, 1, 0, comm.rank() * 10);
    }
  });
}

TEST(P2P, IsendIrecvOverlap) {
  World world(2);
  world.run([](Comm& comm) {
    std::vector<double> out(1000), in(1000);
    std::iota(out.begin(), out.end(), comm.rank() * 1000.0);
    const int peer = 1 - comm.rank();
    Request r = comm.irecv(in.data(), in.size() * sizeof(double), peer, 3);
    Request s = comm.isend(out.data(), out.size() * sizeof(double), peer, 3);
    s.wait();
    r.wait();
    EXPECT_EQ(r.received_bytes(), in.size() * sizeof(double));
    EXPECT_DOUBLE_EQ(in[0], peer * 1000.0);
    EXPECT_DOUBLE_EQ(in[999], peer * 1000.0 + 999);
  });
}

TEST(P2P, SendRecvSwapBetweenPair) {
  World world(2);
  world.run([](Comm& comm) {
    const int peer = 1 - comm.rank();
    int mine = comm.rank() + 100, theirs = -1;
    comm.sendrecv(&mine, sizeof(int), peer, 1, &theirs, sizeof(int), peer, 1);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST(P2P, SelfSendRecv) {
  World world(1);
  world.run([](Comm& comm) {
    int mine = 7, got = 0;
    comm.sendrecv(&mine, sizeof(int), 0, 2, &got, sizeof(int), 0, 2);
    EXPECT_EQ(got, 7);
  });
}

TEST(P2P, ZeroByteMessage) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, 1, 0);
    } else {
      const std::size_t n = comm.recv(nullptr, 0, 0, 0);
      EXPECT_EQ(n, 0u);
    }
  });
}

TEST(P2P, OversizedMessageThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   std::vector<char> big(64, 'x');
                   comm.send(big.data(), big.size(), 1, 0);
                   // Also block so the world tears down via abort path.
                   char c;
                   comm.recv(&c, 1, 1, 99);
                 } else {
                   char small[8];
                   comm.recv(small, sizeof(small), 0, 0);
                 }
               }),
               Error);
}

TEST(P2P, ExceptionOnOneRankAbortsBlockedRanks) {
  World world(4);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   DC_FAIL("deliberate failure");
                 }
                 // Everyone else blocks on a message that never arrives.
                 int v;
                 comm.recv(&v, sizeof(int), 0, 0);
               }),
               Error);
}

TEST(P2P, StatsCountMessagesAndBytes) {
  World world(2);
  world.reset_stats();
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> buf(100);
      comm.send(buf.data(), buf.size(), 1, 0);
    } else {
      std::vector<char> buf(100);
      comm.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  const CommStats s = world.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(P2P, WorldCanRunMultipleTimes) {
  World world(2);
  for (int iter = 0; iter < 3; ++iter) {
    world.run([iter](Comm& comm) {
      int v = iter;
      if (comm.rank() == 0) {
        comm.send(&v, 1, 1, 0);
      } else {
        int got = -1;
        comm.recv(&got, 1, 0, 0);
        EXPECT_EQ(got, iter);
      }
    });
  }
}

TEST(P2P, RequestTestPolling) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int v = 0;
      Request r = comm.irecv(&v, sizeof(int), 1, 0);
      // Spin until complete (the peer sends immediately).
      while (!r.test()) {
      }
      EXPECT_EQ(v, 55);
    } else {
      const int v = 55;
      comm.send(&v, 1, 0, 0);
    }
  });
}

}  // namespace
}  // namespace distconv::comm
