// Communication watchdog and world-wide failure propagation: a lost message
// or stalled rank converts into typed errors (CommTimeoutError on the rank
// whose wait expired, RankFailedError everywhere else) instead of a
// deadlock, under every DC_COMM_PROGRESS mode.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "comm/collectives.hpp"
#include "comm/comm.hpp"
#include "comm/mailbox.hpp"
#include "comm/world.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"

namespace distconv::comm {
namespace {

TEST(Watchdog, DisabledByDefault) {
  // Tier-1 behaviour is unchanged: without DC_COMM_TIMEOUT_MS the deadline
  // is off and ordinary communication completes as before.
  EXPECT_LE(comm_timeout_ms(), 0);
  World world(2);
  world.run([](Comm& comm) {
    int x = comm.rank();
    allreduce(comm, &x, 1, ReduceOp::kSum);
    EXPECT_EQ(x, 1);
  });
}

TEST(Watchdog, GuardRestoresPreviousDeadline) {
  const std::int64_t before = comm_timeout_ms();
  {
    CommTimeoutGuard guard(123);
    EXPECT_EQ(comm_timeout_ms(), 123);
    {
      CommTimeoutGuard inner(456);
      EXPECT_EQ(comm_timeout_ms(), 456);
    }
    EXPECT_EQ(comm_timeout_ms(), 123);
  }
  EXPECT_EQ(comm_timeout_ms(), before);
}

TEST(Watchdog, LostMessageTimesOutWithDiagnostics) {
  CommTimeoutGuard guard(150);
  World world(2);
  std::string message;
  std::int64_t reported_ms = 0;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      float buf = 0.0f;
      try {
        comm.recv(&buf, 1, /*src=*/1, /*tag=*/7);  // never sent
        FAIL() << "lost message must not complete";
      } catch (const CommTimeoutError& e) {
        message = e.what();
        reported_ms = e.timeout_ms();
      }
    }
    // Rank 1 sends nothing and returns; rank 0's wait must expire.
  });
  EXPECT_EQ(reported_ms, 150);
  // The error names what the rank was blocked on.
  EXPECT_NE(message.find("src=1"), std::string::npos) << message;
  EXPECT_NE(message.find("tag=7"), std::string::npos) << message;
}

TEST(Watchdog, EveryBlockedRankRaisesInAllreduce) {
  // Rank 3 never joins the collective: every participating rank's wait
  // expires independently, and each raises a typed, labeled timeout.
  CommTimeoutGuard guard(150);
  World world(4);
  std::array<std::string, 4> caught;
  world.run([&](Comm& comm) {
    if (comm.rank() == 3) return;  // the stalled rank
    float x = 1.0f;
    try {
      allreduce(comm, &x, 1, ReduceOp::kSum);
      FAIL() << "allreduce with a missing rank must not complete";
    } catch (const CommError& e) {
      caught[comm.rank()] = e.what();
    }
  });
  for (int r = 0; r < 3; ++r) {
    ASSERT_FALSE(caught[r].empty()) << "rank " << r << " did not raise";
    EXPECT_NE(caught[r].find("allreduce"), std::string::npos) << caught[r];
  }
}

TEST(Watchdog, AbortNamesTheFailingRank) {
  // A rank that dies outright (no timeout involved) wakes every blocked
  // rank with its identity and message.
  World world(4);
  std::array<int, 4> failed_rank{{-2, -2, -2, -2}};
  std::array<std::string, 4> what;
  EXPECT_THROW(
      world.run([&](Comm& comm) {
        if (comm.rank() == 2) throw Error("rank 2 exploded");
        try {
          barrier(comm);
          FAIL() << "barrier must abort";
        } catch (const RankFailedError& e) {
          failed_rank[comm.rank()] = e.rank();
          what[comm.rank()] = e.what();
          throw;
        }
      }),
      Error);
  for (int r : {0, 1, 3}) {
    EXPECT_EQ(failed_rank[r], 2) << "rank " << r;
    EXPECT_NE(what[r].find("rank 2 exploded"), std::string::npos) << what[r];
  }
}

TEST(Watchdog, TypedHierarchyRoutesOnCommError) {
  // Recovery drivers key on exactly CommError: both fault flavours are
  // CommErrors; checkpoint corruption and serve degradation are not.
  const CommTimeoutError timeout("t", 10);
  const RankFailedError failed("f", 3);
  EXPECT_NE(dynamic_cast<const CommError*>(&timeout), nullptr);
  EXPECT_NE(dynamic_cast<const CommError*>(&failed), nullptr);
  EXPECT_NE(dynamic_cast<const Error*>(&timeout), nullptr);
  const CheckpointCorruptError corrupt("c");
  const OverloadedError overloaded("o");
  const DeadlineExceededError deadline("d");
  EXPECT_EQ(dynamic_cast<const CommError*>(
                static_cast<const Error*>(&corrupt)),
            nullptr);
  EXPECT_EQ(dynamic_cast<const CommError*>(
                static_cast<const Error*>(&overloaded)),
            nullptr);
  EXPECT_EQ(dynamic_cast<const CommError*>(
                static_cast<const Error*>(&deadline)),
            nullptr);
}

// A stalled rank inside a real distributed forward (halo exchanges under a
// spatial grid, shuffles + channel collectives under a channel-parallel
// grid) must surface as a typed CommError on EVERY rank — the stalled one
// included, which finds its world aborted the moment it resumes — under all
// three progress-engine modes.
void run_stalled_forward(const core::Strategy& strategy, ProgressMode mode) {
  CommTimeoutGuard guard(200);
  World world(4);
  std::array<std::atomic<int>, 4> raised{};  // 1 = CommError seen
  try {
    world.run([&](Comm& comm) {
      try {
        core::NetworkBuilder nb;
        const int in = nb.input(Shape4{4, 4, 12, 12});
        int x = nb.conv("c1", in, 8, 3, 1);
        x = nb.relu("r1", x);
        nb.conv("head", x, 2, 3, 1);
        const core::NetworkSpec spec = nb.take();
        core::ModelOptions opts;
        opts.comm_progress = mode;
        core::Model model(spec, comm, strategy, 11, opts);
        Tensor<float> input(Shape4{4, 4, 12, 12});
        Rng rng(5);
        input.fill_uniform(rng);
        if (comm.rank() == 2) {
          // Stall well past every other rank's deadline.
          std::this_thread::sleep_for(std::chrono::milliseconds(600));
        }
        model.set_input(0, input);
        model.forward();
        // Under channel parallelism the stalled rank's channel group hangs
        // but the other group's forward is self-contained; the step's first
        // world-wide collective (here: the loss reduction stand-in) is where
        // those ranks must learn the world is dead.
        barrier(comm);
        FAIL() << "forward with a stalled rank must not complete";
      } catch (const CommError&) {
        raised[comm.rank()].store(1);
        throw;
      }
    });
    FAIL() << "world.run must rethrow the first failure";
  } catch (const CommError&) {
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(raised[r].load(), 1)
        << "rank " << r << " did not raise under mode "
        << to_string(mode);
  }
}

TEST(Watchdog, StalledRankSurfacesOnAllRanksSpatial) {
  for (const ProgressMode mode :
       {ProgressMode::kOff, ProgressMode::kThread, ProgressMode::kHooks}) {
    run_stalled_forward(
        core::Strategy::uniform(4, ProcessGrid{1, 1, 2, 2}), mode);
  }
}

TEST(Watchdog, StalledRankSurfacesOnAllRanksChannel) {
  for (const ProgressMode mode :
       {ProgressMode::kOff, ProgressMode::kThread, ProgressMode::kHooks}) {
    run_stalled_forward(core::Strategy::channel_parallel(4, 4, 2), mode);
  }
}

}  // namespace
}  // namespace distconv::comm
