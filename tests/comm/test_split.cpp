#include <gtest/gtest.h>

#include <vector>

#include "comm/collectives.hpp"

namespace distconv::comm {
namespace {

TEST(Split, PartitionsByColor) {
  // 8 ranks → two groups of 4 by parity.
  World world(8);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Sum of world ranks within the subgroup.
    int v = comm.rank();
    allreduce(sub, &v, 1, ReduceOp::kSum);
    const int expected = (comm.rank() % 2 == 0) ? (0 + 2 + 4 + 6) : (1 + 3 + 5 + 7);
    EXPECT_EQ(v, expected);
  });
}

TEST(Split, KeyControlsRankOrder) {
  World world(4);
  world.run([](Comm& comm) {
    // Reverse the order via descending keys.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(Split, SubCommunicatorsAreIsolated) {
  // Same (src rank, dst rank, tag) on the parent and the sub-communicator
  // must match by context, not arrival order.
  World world(4);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    ASSERT_EQ(sub.size(), 2);
    if (comm.rank() == 0) {
      int on_parent = 111, on_sub = 222;
      comm.send(&on_parent, 1, 1, 0);  // parent ranks 0→1
      sub.send(&on_sub, 1, 1, 0);      // sub ranks 0→1 (same world pair)
    } else if (comm.rank() == 1) {
      int got_sub = 0, got_parent = 0;
      // Receive in the opposite order from the sends.
      sub.recv(&got_sub, 1, 0, 0);
      comm.recv(&got_parent, 1, 0, 0);
      EXPECT_EQ(got_sub, 222);
      EXPECT_EQ(got_parent, 111);
    }
  });
}

TEST(Split, HybridSampleSpatialGrouping) {
  // The paper's hybrid layout: 8 ranks = 4 sample groups × 2 spatial ranks.
  // Sample group = rank / 2; spatial allreduce within group, gradient
  // allreduce across everyone.
  World world(8);
  world.run([](Comm& comm) {
    Comm spatial = comm.split(comm.rank() / 2, comm.rank());
    EXPECT_EQ(spatial.size(), 2);
    double v = 1.0;
    allreduce(spatial, &v, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v, 2.0);
    double g = comm.rank();
    allreduce(comm, &g, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(g, 28.0);
  });
}

TEST(Split, NestedSplits) {
  World world(8);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    int v = 1;
    allreduce(quarter, &v, 1, ReduceOp::kSum);
    EXPECT_EQ(v, 2);
  });
}

TEST(Split, DupGivesIndependentContext) {
  World world(3);
  world.run([](Comm& comm) {
    Comm dup = comm.dup();
    EXPECT_EQ(dup.size(), comm.size());
    EXPECT_EQ(dup.rank(), comm.rank());
    EXPECT_NE(dup.context(), comm.context());
    // Message sent on dup is not receivable on comm (different context):
    // send on dup, receive on dup only.
    if (comm.rank() == 0) {
      int v = 42;
      dup.send(&v, 1, 1, 0);
    } else if (comm.rank() == 1) {
      int v = 0;
      dup.recv(&v, 1, 0, 0);
      EXPECT_EQ(v, 42);
    }
  });
}

}  // namespace
}  // namespace distconv::comm
