#include <gtest/gtest.h>

#include <cmath>

#include "kernels/activations.hpp"
#include "kernels/losses.hpp"
#include "kernels/sgd.hpp"

namespace distconv::kernels {
namespace {

Box4 full_box(const Shape4& s) {
  Box4 b;
  for (int d = 0; d < 4; ++d) b.ext[d] = s[d];
  return b;
}

TEST(Relu, ForwardClampsNegatives) {
  const Shape4 s{1, 1, 2, 3};
  Tensor<float> x(s), y(s);
  float vals[] = {-1, 0, 2, -3, 4, -0.5f};
  std::copy(vals, vals + 6, x.data());
  relu_forward(x, full_box(s), y, full_box(s));
  EXPECT_FLOAT_EQ(y.data()[0], 0);
  EXPECT_FLOAT_EQ(y.data()[2], 2);
  EXPECT_FLOAT_EQ(y.data()[4], 4);
  EXPECT_FLOAT_EQ(y.data()[5], 0);
}

TEST(Relu, BackwardMasksByInput) {
  const Shape4 s{1, 1, 1, 4};
  Tensor<float> x(s), dy(s), dx(s);
  float xv[] = {-1, 1, 0, 2};
  std::copy(xv, xv + 4, x.data());
  dy.fill(3.0f);
  relu_backward(x, full_box(s), dy, full_box(s), dx, full_box(s));
  EXPECT_FLOAT_EQ(dx.data()[0], 0);
  EXPECT_FLOAT_EQ(dx.data()[1], 3);
  EXPECT_FLOAT_EQ(dx.data()[2], 0);  // gradient at exactly 0 is 0
  EXPECT_FLOAT_EQ(dx.data()[3], 3);
}

TEST(Relu, RegionRestrictsEffect) {
  const Shape4 s{1, 1, 4, 4};
  Tensor<float> x(s), y(s);
  x.fill(-1.0f);
  y.fill(9.0f);
  Box4 half = full_box(s);
  half.ext[2] = 2;
  relu_forward(x, half, y, half);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 3, 3), 9.0f);  // outside the box untouched
}

TEST(AddInplace, Accumulates) {
  const Shape4 s{2, 1, 2, 2};
  Tensor<float> a(s), b(s);
  a.fill(1.0f);
  b.fill(2.5f);
  add_inplace(a, full_box(s), b, full_box(s));
  for (std::int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.data()[i], 3.5f);
}

TEST(Bias, ForwardAddsPerChannel) {
  const Shape4 s{1, 2, 2, 2};
  Tensor<float> y(s);
  const float bias[] = {1.0f, -2.0f};
  bias_forward(y, full_box(s), bias);
  EXPECT_FLOAT_EQ(y(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y(0, 1, 0, 0), -2.0f);
}

TEST(Bias, BackwardSumsPerChannel) {
  const Shape4 s{2, 2, 2, 2};
  Tensor<float> dy(s);
  dy.fill(0.5f);
  float dbias[2] = {100, 100};
  bias_backward(dy, full_box(s), dbias, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(dbias[0], 4.0f);  // 2 samples * 4 pixels * 0.5
  bias_backward(dy, full_box(s), dbias, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(dbias[0], 8.0f);
}

TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  Tensor<float> logits(Shape4{2, 4, 1, 1}), probs(logits.shape());
  logits.fill(0.3f);
  const double loss = softmax_xent_forward(logits, {0, 3}, probs);
  EXPECT_NEAR(loss, 2 * std::log(4.0), 1e-5);
  for (std::int64_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(probs.data()[i], 0.25f, 1e-6);
  }
}

TEST(SoftmaxXent, ProbabilitiesSumToOne) {
  Tensor<float> logits(Shape4{3, 5, 1, 1}), probs(logits.shape());
  Rng rng(3);
  logits.fill_uniform(rng, -5, 5);
  softmax_xent_forward(logits, {1, 2, 4}, probs);
  for (int k = 0; k < 3; ++k) {
    double s = 0;
    for (int c = 0; c < 5; ++c) s += probs(k, c, 0, 0);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxXent, GradientIsProbMinusOnehot) {
  Tensor<float> logits(Shape4{1, 3, 1, 1}), probs(logits.shape()),
      grad(logits.shape());
  logits(0, 0, 0, 0) = 1;
  logits(0, 1, 0, 0) = 2;
  logits(0, 2, 0, 0) = 3;
  softmax_xent_forward(logits, {2}, probs);
  softmax_xent_backward(probs, {2}, grad, 1.0f);
  EXPECT_NEAR(grad(0, 0, 0, 0), probs(0, 0, 0, 0), 1e-6);
  EXPECT_NEAR(grad(0, 2, 0, 0), probs(0, 2, 0, 0) - 1.0f, 1e-6);
}

TEST(SoftmaxXent, NumericalGradient) {
  Tensor<float> logits(Shape4{2, 4, 1, 1}), probs(logits.shape()),
      grad(logits.shape());
  Rng rng(9);
  logits.fill_uniform(rng, -2, 2);
  const std::vector<int> labels{1, 3};
  softmax_xent_forward(logits, labels, probs);
  softmax_xent_backward(probs, labels, grad, 1.0f);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + h;
    const double lp = softmax_xent_forward(logits, labels, probs);
    logits.data()[i] = orig - h;
    const double lm = softmax_xent_forward(logits, labels, probs);
    logits.data()[i] = orig;
    EXPECT_NEAR(grad.data()[i], (lp - lm) / (2 * h), 1e-3) << i;
  }
}

TEST(SigmoidBce, KnownValues) {
  const Shape4 s{1, 1, 1, 2};
  Tensor<float> z(s), t(s);
  z.data()[0] = 0.0f;
  t.data()[0] = 1.0f;  // -log(0.5)
  z.data()[1] = 100.0f;
  t.data()[1] = 1.0f;  // ~0
  const double loss = sigmoid_bce_forward(z, full_box(s), t, full_box(s));
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
}

TEST(SigmoidBce, NumericalGradient) {
  const Shape4 s{1, 1, 2, 3};
  Tensor<float> z(s), t(s), g(s);
  Rng rng(13);
  z.fill_uniform(rng, -3, 3);
  for (std::int64_t i = 0; i < t.size(); ++i) t.data()[i] = (i % 2) ? 1.0f : 0.0f;
  sigmoid_bce_backward(z, full_box(s), t, full_box(s), g, full_box(s), 1.0f);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < z.size(); ++i) {
    const float orig = z.data()[i];
    z.data()[i] = orig + h;
    const double lp = sigmoid_bce_forward(z, full_box(s), t, full_box(s));
    z.data()[i] = orig - h;
    const double lm = sigmoid_bce_forward(z, full_box(s), t, full_box(s));
    z.data()[i] = orig;
    EXPECT_NEAR(g.data()[i], (lp - lm) / (2 * h), 1e-3) << i;
  }
}

TEST(Sgd, PlainStep) {
  float p = 1.0f, g = 0.5f;
  sgd_update(&p, &g, nullptr, 1, SgdConfig{0.1f, 0.0f, 0.0f});
  EXPECT_FLOAT_EQ(p, 0.95f);
}

TEST(Sgd, WeightDecayAddsToGradient) {
  float p = 1.0f, g = 0.0f;
  sgd_update(&p, &g, nullptr, 1, SgdConfig{0.1f, 0.0f, 0.5f});
  EXPECT_FLOAT_EQ(p, 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  float p = 0.0f, g = 1.0f, v = 0.0f;
  const SgdConfig cfg{1.0f, 0.9f, 0.0f};
  sgd_update(&p, &g, &v, 1, cfg);
  EXPECT_FLOAT_EQ(p, -1.0f);  // v = 1
  sgd_update(&p, &g, &v, 1, cfg);
  EXPECT_FLOAT_EQ(p, -1.0f - 1.9f);  // v = 0.9 + 1
}

TEST(Sgd, MomentumWithoutVelocityThrows) {
  float p = 0, g = 0;
  EXPECT_THROW(sgd_update(&p, &g, nullptr, 1, SgdConfig{0.1f, 0.9f, 0.0f}),
               Error);
}

}  // namespace
}  // namespace distconv::kernels
