#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/batchnorm.hpp"

namespace distconv::kernels {
namespace {

Box4 full_box(const Shape4& s) {
  Box4 b;
  for (int d = 0; d < 4; ++d) b.ext[d] = s[d];
  return b;
}

TEST(BatchNorm, PartialSumsAreExact) {
  Tensor<float> x(Shape4{2, 3, 4, 4});
  Rng rng(3);
  x.fill_uniform(rng);
  std::vector<double> sum(3), sumsq(3);
  bn_partial_sums(x, full_box(x.shape()), sum.data(), sumsq.data());
  for (int c = 0; c < 3; ++c) {
    double s = 0, s2 = 0;
    for (int n = 0; n < 2; ++n)
      for (int h = 0; h < 4; ++h)
        for (int w = 0; w < 4; ++w) {
          s += x(n, c, h, w);
          s2 += double(x(n, c, h, w)) * x(n, c, h, w);
        }
    EXPECT_NEAR(sum[c], s, 1e-9);
    EXPECT_NEAR(sumsq[c], s2, 1e-9);
  }
}

TEST(BatchNorm, PartialSumsSplitAdditive) {
  // Summing over two disjoint boxes equals one sum over the union — the
  // property the distributed BN relies on before its allreduce.
  Tensor<float> x(Shape4{2, 2, 6, 4});
  Rng rng(5);
  x.fill_uniform(rng);
  std::vector<double> whole_s(2), whole_q(2), a_s(2), a_q(2), b_s(2), b_q(2);
  bn_partial_sums(x, full_box(x.shape()), whole_s.data(), whole_q.data());
  Box4 top = full_box(x.shape());
  top.ext[2] = 3;
  Box4 bottom = top;
  bottom.off[2] = 3;
  bn_partial_sums(x, top, a_s.data(), a_q.data());
  bn_partial_sums(x, bottom, b_s.data(), b_q.data());
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(a_s[c] + b_s[c], whole_s[c], 1e-9);
    EXPECT_NEAR(a_q[c] + b_q[c], whole_q[c], 1e-9);
  }
}

TEST(BatchNorm, ForwardNormalizesToZeroMeanUnitVar) {
  const Shape4 s{4, 2, 5, 5};
  Tensor<float> x(s), y(s);
  Rng rng(7);
  x.fill_normal(rng, 3.0f, 2.0f);
  std::vector<double> sum(2), sumsq(2);
  bn_partial_sums(x, full_box(s), sum.data(), sumsq.data());
  const double count = double(s.n) * s.h * s.w;
  std::vector<float> mean(2), invstd(2), gamma(2, 1.0f), beta(2, 0.0f);
  for (int c = 0; c < 2; ++c) {
    mean[c] = float(sum[c] / count);
    const double var = sumsq[c] / count - double(mean[c]) * mean[c];
    invstd[c] = float(1.0 / std::sqrt(var + 1e-5));
  }
  bn_forward_apply(x, full_box(s), y, full_box(s), mean.data(), invstd.data(),
                   gamma.data(), beta.data());
  std::vector<double> ys(2), yq(2);
  bn_partial_sums(y, full_box(s), ys.data(), yq.data());
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(ys[c] / count, 0.0, 1e-4);
    EXPECT_NEAR(yq[c] / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaAffine) {
  const Shape4 s{1, 1, 2, 2};
  Tensor<float> x(s), y(s);
  x(0, 0, 0, 0) = -1;
  x(0, 0, 0, 1) = 1;
  x(0, 0, 1, 0) = -1;
  x(0, 0, 1, 1) = 1;
  const float mean = 0.0f, invstd = 1.0f;
  const float gamma = 2.0f, beta = 10.0f;
  bn_forward_apply(x, full_box(s), y, full_box(s), &mean, &invstd, &gamma, &beta);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 8.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1), 12.0f);
}

TEST(BatchNorm, NumericalGradientCheck) {
  const Shape4 s{2, 2, 3, 3};
  Tensor<float> x(s), dy(s);
  Rng rng(11);
  x.fill_uniform(rng, -2.0f, 2.0f);
  dy.fill_uniform(rng);
  std::vector<float> gamma{1.3f, 0.7f}, beta{0.1f, -0.2f};
  const double count = double(s.n) * s.h * s.w;
  const double eps_bn = 1e-5;

  auto forward = [&](const Tensor<float>& xin, Tensor<float>& yout) {
    std::vector<double> sum(2), sumsq(2);
    bn_partial_sums(xin, full_box(s), sum.data(), sumsq.data());
    std::vector<float> mean(2), invstd(2);
    for (int c = 0; c < 2; ++c) {
      mean[c] = float(sum[c] / count);
      const double var = sumsq[c] / count - double(mean[c]) * mean[c];
      invstd[c] = float(1.0 / std::sqrt(var + eps_bn));
    }
    bn_forward_apply(xin, full_box(s), yout, full_box(s), mean.data(),
                     invstd.data(), gamma.data(), beta.data());
  };

  // Analytic dx.
  std::vector<double> sum(2), sumsq(2);
  bn_partial_sums(x, full_box(s), sum.data(), sumsq.data());
  std::vector<float> mean(2), invstd(2);
  for (int c = 0; c < 2; ++c) {
    mean[c] = float(sum[c] / count);
    const double var = sumsq[c] / count - double(mean[c]) * mean[c];
    invstd[c] = float(1.0 / std::sqrt(var + eps_bn));
  }
  std::vector<double> sdy(2), sdyx(2);
  bn_backward_reduce(x, full_box(s), dy, full_box(s), mean.data(), invstd.data(),
                     sdy.data(), sdyx.data());
  Tensor<float> dx(s);
  bn_backward_apply(x, full_box(s), dy, full_box(s), dx, full_box(s), mean.data(),
                    invstd.data(), gamma.data(), sdy.data(), sdyx.data(), count);

  Tensor<float> y(s);
  const float h = 1e-2f;
  for (std::int64_t i : {0L, 3L, 9L, 17L, 35L}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + h;
    forward(x, y);
    double lp = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lp += y.data()[j] * dy.data()[j];
    x.data()[i] = orig - h;
    forward(x, y);
    double lm = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lm += y.data()[j] * dy.data()[j];
    x.data()[i] = orig;
    EXPECT_NEAR(dx.data()[i], (lp - lm) / (2 * h), 5e-2) << "i=" << i;
  }
}

}  // namespace
}  // namespace distconv::kernels
