// Numerical robustness: extreme logits, degenerate shapes, and stability
// properties of the loss and normalization kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/batchnorm.hpp"
#include "kernels/losses.hpp"

namespace distconv::kernels {
namespace {

Box4 full_box(const Shape4& s) {
  Box4 b;
  for (int d = 0; d < 4; ++d) b.ext[d] = s[d];
  return b;
}

TEST(SigmoidBce, StableAtExtremeLogits) {
  const Shape4 s{1, 1, 1, 4};
  Tensor<float> z(s), t(s), g(s);
  z.data()[0] = 100.0f;
  t.data()[0] = 1.0f;  // loss ≈ 0
  z.data()[1] = -100.0f;
  t.data()[1] = 0.0f;  // loss ≈ 0
  z.data()[2] = 100.0f;
  t.data()[2] = 0.0f;  // loss ≈ 100
  z.data()[3] = -100.0f;
  t.data()[3] = 1.0f;  // loss ≈ 100
  const double loss = sigmoid_bce_forward(z, full_box(s), t, full_box(s));
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 200.0, 1e-3);
  sigmoid_bce_backward(z, full_box(s), t, full_box(s), g, full_box(s), 1.0f);
  for (std::int64_t i = 0; i < g.size(); ++i) {
    EXPECT_TRUE(std::isfinite(g.data()[i])) << i;
    EXPECT_LE(std::abs(g.data()[i]), 1.0f) << i;  // |σ(z) − t| ≤ 1
  }
}

TEST(SoftmaxXent, StableAtExtremeLogits) {
  Tensor<float> logits(Shape4{2, 3, 1, 1}), probs(logits.shape());
  logits(0, 0, 0, 0) = 1000.0f;  // would overflow a naive exp()
  logits(0, 1, 0, 0) = -1000.0f;
  logits(0, 2, 0, 0) = 0.0f;
  logits(1, 0, 0, 0) = -1000.0f;
  logits(1, 1, 0, 0) = -1000.0f;
  logits(1, 2, 0, 0) = -1000.0f;  // all equal: uniform
  const double loss = softmax_xent_forward(logits, {0, 1}, probs);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(probs(0, 0, 0, 0), 1.0f, 1e-5);
  EXPECT_NEAR(probs(1, 1, 0, 0), 1.0f / 3.0f, 1e-5);
  EXPECT_NEAR(loss, 0.0 + std::log(3.0), 1e-4);
}

TEST(SoftmaxXent, OutOfRangeLabelThrows) {
  Tensor<float> logits(Shape4{1, 3, 1, 1}), probs(logits.shape());
  EXPECT_THROW(softmax_xent_forward(logits, {3}, probs), Error);
  EXPECT_THROW(softmax_xent_forward(logits, {-1}, probs), Error);
}

TEST(BatchNorm, ConstantInputDoesNotDivideByZero) {
  // Zero variance: invstd = 1/sqrt(eps); outputs stay finite and equal beta.
  const Shape4 s{2, 1, 3, 3};
  Tensor<float> x(s), y(s);
  x.fill(5.0f);
  std::vector<double> sum(1), sumsq(1);
  bn_partial_sums(x, full_box(s), sum.data(), sumsq.data());
  const double count = 2.0 * 9.0;
  const float mean = float(sum[0] / count);
  const double var = std::max(0.0, sumsq[0] / count - double(mean) * mean);
  const float invstd = float(1.0 / std::sqrt(var + 1e-5));
  EXPECT_TRUE(std::isfinite(invstd));
  const float gamma = 1.0f, beta = 0.25f;
  bn_forward_apply(x, full_box(s), y, full_box(s), &mean, &invstd, &gamma, &beta);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], 0.25f, 1e-3f);
  }
}

TEST(BatchNorm, SingleElementStatistics) {
  const Shape4 s{1, 2, 1, 1};
  Tensor<float> x(s);
  x(0, 0, 0, 0) = 3.0f;
  x(0, 1, 0, 0) = -7.0f;
  std::vector<double> sum(2), sumsq(2);
  bn_partial_sums(x, full_box(s), sum.data(), sumsq.data());
  EXPECT_DOUBLE_EQ(sum[0], 3.0);
  EXPECT_DOUBLE_EQ(sum[1], -7.0);
  EXPECT_DOUBLE_EQ(sumsq[1], 49.0);
}

TEST(SigmoidBce, GradientScaleAppliesLinearly) {
  const Shape4 s{1, 1, 2, 2};
  Tensor<float> z(s), t(s), g1(s), g2(s);
  Rng rng(9);
  z.fill_uniform(rng, -2, 2);
  sigmoid_bce_backward(z, full_box(s), t, full_box(s), g1, full_box(s), 1.0f);
  sigmoid_bce_backward(z, full_box(s), t, full_box(s), g2, full_box(s), 0.25f);
  for (std::int64_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2.data()[i], 0.25f * g1.data()[i], 1e-6f);
  }
}

}  // namespace
}  // namespace distconv::kernels
