#include <gtest/gtest.h>

#include <vector>

#include "kernels/gemm.hpp"
#include "support/rng.hpp"

namespace distconv::kernels {
namespace {

void naive(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const std::vector<float>& a, std::int64_t lda,
           const std::vector<float>& b, std::int64_t ldb, float beta,
           std::vector<float>& c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * lda + i] : a[i * lda + kk];
        const float bv = tb ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += double(av) * bv;
      }
      c[i * ldc + j] = float(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

class GemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Combine(::testing::Values(1, 3, 17, 64),
                                            ::testing::Values(1, 5, 33),
                                            ::testing::Values(1, 7, 130),
                                            ::testing::Bool(), ::testing::Bool()));

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(5);
  std::vector<float> a(static_cast<std::size_t>(m) * k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = float(rng.uniform(-1, 1));
  for (auto& v : b) v = float(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f), c_ref = c;
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm(ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(), ldb, 0.75f, c.data(), n);
  naive(ta, tb, m, n, k, 1.25f, a, lda, b, ldb, 0.75f, c_ref, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << i;
  }
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  std::vector<float> a{1, 2}, b{3, 4};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  sgemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
}

TEST(Gemm, AlphaZeroLeavesScaledC) {
  std::vector<float> a{1}, b{1};
  std::vector<float> c{2.0f};
  sgemm(false, false, 1, 1, 1, 0.0f, a.data(), 1, b.data(), 1, 0.5f, c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

}  // namespace
}  // namespace distconv::kernels
