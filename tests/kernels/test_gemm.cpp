#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "kernels/gemm.hpp"
#include "support/rng.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::kernels {
namespace {

void naive(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k,
           float alpha, const std::vector<float>& a, std::int64_t lda,
           const std::vector<float>& b, std::int64_t ldb, float beta,
           std::vector<float>& c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * lda + i] : a[i * lda + kk];
        const float bv = tb ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += double(av) * bv;
      }
      c[i * ldc + j] = float(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

class GemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Combine(::testing::Values(1, 3, 17, 64),
                                            ::testing::Values(1, 5, 33),
                                            ::testing::Values(1, 7, 130),
                                            ::testing::Bool(), ::testing::Bool()));

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(5);
  std::vector<float> a(static_cast<std::size_t>(m) * k), b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = float(rng.uniform(-1, 1));
  for (auto& v : b) v = float(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f), c_ref = c;
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  sgemm(ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(), ldb, 0.75f, c.data(), n);
  naive(ta, tb, m, n, k, 1.25f, a, lda, b, ldb, 0.75f, c_ref, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << i;
  }
}

// Leading dimensions larger than the row length (odd strides) must be
// honoured by the packing gathers for every transpose combination.
TEST(Gemm, OddLeadingDimensions) {
  Rng rng(19);
  const std::int64_t m = 13, n = 21, k = 37;
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const std::int64_t lda = (ta ? m : k) + 3;
      const std::int64_t ldb = (tb ? k : n) + 5;
      const std::int64_t ldc = n + 7;
      std::vector<float> a(static_cast<std::size_t>((ta ? k : m)) * lda);
      std::vector<float> b(static_cast<std::size_t>((tb ? n : k)) * ldb);
      std::vector<float> c(static_cast<std::size_t>(m) * ldc, 0.25f), c_ref = c;
      for (auto& v : a) v = float(rng.uniform(-1, 1));
      for (auto& v : b) v = float(rng.uniform(-1, 1));
      sgemm(ta, tb, m, n, k, 1.5f, a.data(), lda, b.data(), ldb, 0.5f, c.data(),
            ldc);
      naive(ta, tb, m, n, k, 1.5f, a, lda, b, ldb, 0.5f, c_ref, ldc);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < ldc; ++j) {
          const float got = c[i * ldc + j], want = c_ref[i * ldc + j];
          ASSERT_NEAR(got, want, 1e-3f)
              << "ta=" << ta << " tb=" << tb << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

// IEEE semantics: a zero in A must not short-circuit the product — 0·NaN and
// 0·Inf are NaN and must reach C (the seed kernel's `av == 0` skip broke
// this).
TEST(Gemm, ZeroTimesNanPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // Row 0 of A is all zeros; column 0 of B carries a NaN, column 1 an Inf.
  std::vector<float> a{0, 0, 1, 1};          // 2×2
  std::vector<float> b{nan, inf, 7, 3};      // 2×2
  std::vector<float> c(4, 0.0f);
  sgemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(), 2);
  EXPECT_TRUE(std::isnan(c[0])) << "0*NaN must be NaN, got " << c[0];
  EXPECT_TRUE(std::isnan(c[1])) << "0*Inf must be NaN, got " << c[1];
  EXPECT_TRUE(std::isnan(c[2]));
  EXPECT_TRUE(std::isinf(c[3])) << "Inf + finite must stay Inf, got " << c[3];
}

// Results must be bit-identical for any thread budget: the tile grid and
// k-blocking are fixed, so only scheduling changes with DC_NUM_THREADS.
TEST(Gemm, ThreadCountDeterminism) {
  Rng rng(23);
  const std::int64_t m = 203, n = 311, k = 517;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = float(rng.uniform(-1, 1));
  for (auto& v : b) v = float(rng.uniform(-1, 1));
  std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.125f), c8 = c1;
  {
    parallel::ThreadGuard guard(1);
    sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c1.data(),
          n);
  }
  {
    parallel::ThreadGuard guard(8);
    sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c8.data(),
          n);
  }
  EXPECT_EQ(0, std::memcmp(c1.data(), c8.data(), c1.size() * sizeof(float)));
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  std::vector<float> a{1, 2}, b{3, 4};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  sgemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
}

TEST(Gemm, AlphaZeroLeavesScaledC) {
  std::vector<float> a{1}, b{1};
  std::vector<float> c{2.0f};
  sgemm(false, false, 1, 1, 1, 0.0f, a.data(), 1, b.data(), 1, 0.5f, c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

}  // namespace
}  // namespace distconv::kernels
