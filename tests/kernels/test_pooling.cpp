#include <gtest/gtest.h>

#include "kernels/pooling.hpp"

namespace distconv::kernels {
namespace {

Tensor<float> make_padded_buffer(const Tensor<float>& x, int ph, int pw) {
  const auto& s = x.shape();
  Tensor<float> buf(Shape4{s.n, s.c, s.h + 2 * ph, s.w + 2 * pw});
  Box4 src, dst;
  for (int d = 0; d < 4; ++d) src.ext[d] = s[d];
  dst = src;
  dst.off[2] = ph;
  dst.off[3] = pw;
  copy_box(x, src, buf, dst);
  return buf;
}

struct PoolCase {
  std::int64_t h, w;
  int k, s, pad;
  PoolMode mode;
};

class PoolSweep : public ::testing::TestWithParam<PoolCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoolSweep,
    ::testing::Values(PoolCase{8, 8, 2, 2, 0, PoolMode::kMax},
                      PoolCase{8, 8, 2, 2, 0, PoolMode::kAverage},
                      PoolCase{9, 9, 3, 2, 1, PoolMode::kMax},
                      PoolCase{9, 9, 3, 2, 1, PoolMode::kAverage},
                      PoolCase{7, 11, 3, 3, 0, PoolMode::kMax},
                      PoolCase{12, 12, 3, 1, 1, PoolMode::kAverage}));

TEST_P(PoolSweep, RegionMatchesPaddedOracle) {
  const auto cfg = GetParam();
  PoolParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.pad, cfg.pad, cfg.mode};
  Tensor<float> x(Shape4{2, 3, cfg.h, cfg.w});
  Rng rng(31);
  x.fill_uniform(rng);
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> y_ref(Shape4{2, 3, oh, ow});
  Tensor<std::int64_t> am_ref(y_ref.shape());
  pool2d_forward_padded(x, y_ref, &am_ref, p);

  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  Tensor<float> y(y_ref.shape());
  Tensor<std::int64_t> am(y.shape());
  pool2d_forward(xbuf, Origin2{-p.ph, -p.pw}, y, Origin2{0, 0}, &am,
                 Origin2{0, 0}, p, Range2{0, oh, 0, ow}, cfg.h, cfg.w);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_FLOAT_EQ(y.data()[i], y_ref.data()[i]) << i;
  }
  if (cfg.mode == PoolMode::kMax) {
    for (std::int64_t i = 0; i < am.size(); ++i) {
      ASSERT_EQ(am.data()[i], am_ref.data()[i]) << i;
    }
  }

  // Backward.
  Tensor<float> dy(y.shape());
  dy.fill_uniform(rng);
  Tensor<float> dx_ref(x.shape());
  pool2d_backward_padded(dy, &am_ref, dx_ref, p);
  Tensor<float> dx(x.shape());
  pool2d_backward(dy, Origin2{0, 0}, &am, dx, Origin2{0, 0}, p,
                  Range2{0, cfg.h, 0, cfg.w}, oh, ow, cfg.w);
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    ASSERT_NEAR(dx.data()[i], dx_ref.data()[i], 1e-5f) << i;
  }
}

TEST(Pool, MaxSelectsMaximum) {
  PoolParams p{2, 2, 2, 2, 0, 0, PoolMode::kMax};
  Tensor<float> x(Shape4{1, 1, 2, 2});
  x(0, 0, 0, 0) = 1;
  x(0, 0, 0, 1) = 5;
  x(0, 0, 1, 0) = -2;
  x(0, 0, 1, 1) = 3;
  Tensor<float> y(Shape4{1, 1, 1, 1});
  Tensor<std::int64_t> am(y.shape());
  pool2d_forward_padded(x, y, &am, p);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(am(0, 0, 0, 0), 1);  // h=0, w=1 → 0*2+1
}

TEST(Pool, MaxBackwardRoutesToArgmaxOnly) {
  PoolParams p{2, 2, 2, 2, 0, 0, PoolMode::kMax};
  Tensor<float> x(Shape4{1, 1, 2, 2});
  x(0, 0, 0, 1) = 5;
  Tensor<float> y(Shape4{1, 1, 1, 1});
  Tensor<std::int64_t> am(y.shape());
  pool2d_forward_padded(x, y, &am, p);
  Tensor<float> dy(y.shape());
  dy.fill(2.0f);
  Tensor<float> dx(x.shape());
  pool2d_backward_padded(dy, &am, dx, p);
  EXPECT_FLOAT_EQ(dx(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(dx(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 0, 1, 1), 0.0f);
}

TEST(Pool, AverageIsMean) {
  PoolParams p{2, 2, 2, 2, 0, 0, PoolMode::kAverage};
  Tensor<float> x(Shape4{1, 1, 2, 2});
  x(0, 0, 0, 0) = 1;
  x(0, 0, 0, 1) = 2;
  x(0, 0, 1, 0) = 3;
  x(0, 0, 1, 1) = 6;
  Tensor<float> y(Shape4{1, 1, 1, 1});
  pool2d_forward_padded(x, y, nullptr, p);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 3.0f);
}

TEST(Pool, MaxIgnoresPadding) {
  // All-negative input with padding: max must pick the largest real value,
  // never the zero padding.
  PoolParams p{3, 3, 2, 2, 1, 1, PoolMode::kMax};
  Tensor<float> x(Shape4{1, 1, 4, 4});
  x.fill(-1.0f);
  x(0, 0, 0, 0) = -0.5f;
  Tensor<float> y(Shape4{1, 1, 2, 2});
  Tensor<std::int64_t> am(y.shape());
  pool2d_forward_padded(x, y, &am, p);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), -0.5f);
  EXPECT_LT(y(0, 0, 1, 1), 0.0f);
}

}  // namespace
}  // namespace distconv::kernels
