#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "kernels/conv.hpp"
#include "support/rng.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::kernels {
namespace {

// Build a margin buffer holding x with `ph`/`pw` zero rows/cols around it,
// i.e. exactly the global padding; origin = (-ph, -pw).
Tensor<float> make_padded_buffer(const Tensor<float>& x, int ph, int pw) {
  const auto& s = x.shape();
  Tensor<float> buf(Shape4{s.n, s.c, s.h + 2 * ph, s.w + 2 * pw});
  Box4 src, dst;
  for (int d = 0; d < 4; ++d) src.ext[d] = s[d];
  dst = src;
  dst.off[2] = ph;
  dst.off[3] = pw;
  copy_box(x, src, buf, dst);
  return buf;
}

struct ConvCase {
  std::int64_t n, c, h, w, f;
  int k, s;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1}, ConvCase{2, 3, 8, 8, 4, 3, 1},
                      ConvCase{1, 2, 9, 7, 3, 5, 1}, ConvCase{2, 2, 8, 8, 3, 3, 2},
                      ConvCase{1, 3, 11, 9, 2, 5, 2}, ConvCase{2, 4, 6, 6, 5, 1, 1},
                      ConvCase{1, 1, 12, 12, 1, 7, 2}, ConvCase{3, 2, 7, 7, 2, 1, 2}));

TEST_P(ConvSweep, RegionKernelMatchesPaddedOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(42);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> y_ref(Shape4{cfg.n, cfg.f, p.out_h(cfg.h), p.out_w(cfg.w)});
  conv2d_forward_padded(x, w, y_ref, p);

  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  Tensor<float> y(y_ref.shape());
  const Range2 full{0, y_ref.shape().h, 0, y_ref.shape().w};
  conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, y, Origin2{0, 0}, p, full);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y.data()[i], y_ref.data()[i], 1e-4f) << "i=" << i;
  }
}

TEST_P(ConvSweep, Im2colMatchesDirect) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(7);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  Tensor<float> yd(Shape4{cfg.n, cfg.f, p.out_h(cfg.h), p.out_w(cfg.w)});
  Tensor<float> yi(yd.shape());
  const Range2 full{0, yd.shape().h, 0, yd.shape().w};
  conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, yd, Origin2{0, 0}, p, full,
                 ConvAlgo::kDirect);
  conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, yi, Origin2{0, 0}, p, full,
                 ConvAlgo::kIm2col);
  for (std::int64_t i = 0; i < yd.size(); ++i) {
    ASSERT_NEAR(yd.data()[i], yi.data()[i], 1e-4f);
  }
}

TEST_P(ConvSweep, RegionSplitEqualsWholeRange) {
  // Interior/boundary decomposition (§IV-A): computing disjoint sub-ranges
  // must produce the same output as one full-range call.
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(11);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> whole(Shape4{cfg.n, cfg.f, oh, ow}), split(whole.shape());
  conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, whole, Origin2{0, 0}, p,
                 Range2{0, oh, 0, ow});
  // Split into 4 quadrant ranges.
  const std::int64_t mh = oh / 2, mw = ow / 2;
  for (const Range2& r : {Range2{0, mh, 0, mw}, Range2{0, mh, mw, ow},
                          Range2{mh, oh, 0, mw}, Range2{mh, oh, mw, ow}}) {
    conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, split, Origin2{0, 0}, p, r);
  }
  for (std::int64_t i = 0; i < whole.size(); ++i) {
    ASSERT_FLOAT_EQ(whole.data()[i], split.data()[i]);
  }
}

TEST_P(ConvSweep, BackwardDataMatchesPaddedOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(13);
  dy.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> dx_ref(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  conv2d_backward_data_padded(dy, w, dx_ref, p);

  Tensor<float> dx(dx_ref.shape());
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p,
                       Range2{0, cfg.h, 0, cfg.w}, oh, ow);
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    ASSERT_NEAR(dx.data()[i], dx_ref.data()[i], 1e-4f) << "i=" << i;
  }
}

TEST_P(ConvSweep, BackwardFilterMatchesPaddedOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Rng rng(17);
  x.fill_uniform(rng);
  dy.fill_uniform(rng);
  Tensor<float> dw_ref(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  conv2d_backward_filter_padded(x, dy, dw_ref, p);

  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  Tensor<float> dw(dw_ref.shape());
  conv2d_backward_filter(xbuf, Origin2{-p.ph, -p.pw}, dy, Origin2{0, 0}, dw, p,
                         Range2{0, oh, 0, ow});
  for (std::int64_t i = 0; i < dw.size(); ++i) {
    ASSERT_NEAR(dw.data()[i], dw_ref.data()[i], 1e-3f) << "i=" << i;
  }
}

TEST_P(ConvSweep, GemmBackwardDataMatchesOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(83);
  dy.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> dx_ref(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  conv2d_backward_data_padded(dy, w, dx_ref, p);

  Tensor<float> dx(dx_ref.shape());
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p,
                       Range2{0, cfg.h, 0, cfg.w}, oh, ow, ConvAlgo::kIm2col);
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    ASSERT_NEAR(dx.data()[i], dx_ref.data()[i], 1e-4f) << "i=" << i;
  }
}

TEST_P(ConvSweep, GemmBackwardDataSplitRangesMatch) {
  // The halo-overlap path hands backward-data disjoint sub-ranges; the
  // col2im scatter must fill exactly its own range.
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Rng rng(89);
  dy.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> whole(Shape4{cfg.n, cfg.c, cfg.h, cfg.w}), split(whole.shape());
  conv2d_backward_data(dy, Origin2{0, 0}, w, whole, Origin2{0, 0}, p,
                       Range2{0, cfg.h, 0, cfg.w}, oh, ow, ConvAlgo::kIm2col);
  const std::int64_t mh = cfg.h / 2, mw = cfg.w / 2;
  for (const Range2& r :
       {Range2{0, mh, 0, mw}, Range2{0, mh, mw, cfg.w},
        Range2{mh, cfg.h, 0, mw}, Range2{mh, cfg.h, mw, cfg.w}}) {
    conv2d_backward_data(dy, Origin2{0, 0}, w, split, Origin2{0, 0}, p, r, oh,
                         ow, ConvAlgo::kIm2col);
  }
  for (std::int64_t i = 0; i < whole.size(); ++i) {
    ASSERT_NEAR(whole.data()[i], split.data()[i], 1e-5f) << "i=" << i;
  }
}

TEST_P(ConvSweep, GemmBackwardFilterMatchesOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Rng rng(97);
  x.fill_uniform(rng);
  dy.fill_uniform(rng);
  Tensor<float> dw_ref(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  conv2d_backward_filter_padded(x, dy, dw_ref, p);

  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  Tensor<float> dw(dw_ref.shape());
  conv2d_backward_filter(xbuf, Origin2{-p.ph, -p.pw}, dy, Origin2{0, 0}, dw, p,
                         Range2{0, oh, 0, ow}, /*accumulate=*/false,
                         ConvAlgo::kIm2col);
  for (std::int64_t i = 0; i < dw.size(); ++i) {
    ASSERT_NEAR(dw.data()[i], dw_ref.data()[i], 1e-3f) << "i=" << i;
  }
}

TEST_P(ConvSweep, ThreadCountDeterminism) {
  // Forward (both algorithms) and both GEMM-backed backward passes must be
  // bit-identical under DC_NUM_THREADS=1 vs 8: the tile grids, strip
  // heights, and reduction groupings are all fixed by shapes alone.
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> x(Shape4{cfg.n, cfg.c, cfg.h, cfg.w});
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Tensor<float> dy(Shape4{cfg.n, cfg.f, oh, ow});
  Rng rng(101);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  dy.fill_uniform(rng);
  Tensor<float> xbuf = make_padded_buffer(x, p.ph, p.pw);
  const Range2 yr{0, oh, 0, ow};
  const Range2 xr{0, cfg.h, 0, cfg.w};

  auto run_all = [&](Tensor<float>& y, Tensor<float>& dx, Tensor<float>& dw) {
    conv2d_forward(xbuf, Origin2{-p.ph, -p.pw}, w, y, Origin2{0, 0}, p, yr,
                   ConvAlgo::kIm2col);
    conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p, xr, oh, ow,
                         ConvAlgo::kIm2col);
    conv2d_backward_filter(xbuf, Origin2{-p.ph, -p.pw}, dy, Origin2{0, 0}, dw,
                           p, yr, false, ConvAlgo::kIm2col);
  };
  Tensor<float> y1(Shape4{cfg.n, cfg.f, oh, ow}), y8(y1.shape());
  Tensor<float> dx1(x.shape()), dx8(x.shape());
  Tensor<float> dw1(w.shape()), dw8(w.shape());
  {
    parallel::ThreadGuard guard(1);
    run_all(y1, dx1, dw1);
  }
  {
    parallel::ThreadGuard guard(8);
    run_all(y8, dx8, dw8);
  }
  EXPECT_EQ(0, std::memcmp(y1.data(), y8.data(), y1.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(dx1.data(), dx8.data(), dx1.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(dw1.data(), dw8.data(), dw1.size() * sizeof(float)));
}

// Shapes large enough that the GEMM backward-data path runs several
// lowering strips per sample (ckk · win rows > the ~2 MiB strip budget),
// with kh > sh so consecutive strips' gather windows overlap: the packed
// dcol boundary rows are reused from the previous strip instead of being
// recomputed. The reuse must be invisible — identical to the oracle, to
// the direct kernel, across a split input range, and for any thread count.
struct StripCase {
  std::int64_t c, h, w, f;
  int k, s;
};

class BackwardDataStripSweep : public ::testing::TestWithParam<StripCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackwardDataStripSweep,
    ::testing::Values(StripCase{96, 40, 88, 32, 3, 1},   // deep 3×3, ~7 strips
                      StripCase{64, 44, 80, 16, 5, 1},   // wider overlap (k=5)
                      StripCase{96, 61, 80, 24, 5, 2},   // strided, kh > sh
                      StripCase{128, 40, 72, 16, 7, 2}));  // reach ⌈(k−1)/s⌉=3

TEST_P(BackwardDataStripSweep, BoundaryRowReuseMatchesOracle) {
  const auto cfg = GetParam();
  const ConvParams p{cfg.k, cfg.k, cfg.s, cfg.s, cfg.k / 2, cfg.k / 2};
  const std::int64_t oh = p.out_h(cfg.h), ow = p.out_w(cfg.w);
  Tensor<float> w(Shape4{cfg.f, cfg.c, cfg.k, cfg.k});
  Tensor<float> dy(Shape4{2, cfg.f, oh, ow});
  Rng rng(314);
  w.fill_uniform(rng);
  dy.fill_uniform(rng);
  const Range2 xr{0, cfg.h, 0, cfg.w};

  Tensor<float> dx_ref(Shape4{2, cfg.c, cfg.h, cfg.w});
  conv2d_backward_data_padded(dy, w, dx_ref, p);
  Tensor<float> dx(dx_ref.shape());
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p, xr, oh, ow,
                       ConvAlgo::kIm2col);
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    ASSERT_NEAR(dx.data()[i], dx_ref.data()[i],
                1e-3f * std::max(1.0f, std::abs(dx_ref.data()[i])))
        << "i=" << i;
  }

  // Splitting the input range restarts the strip sequence mid-tensor; the
  // per-element accumulation chains must not move.
  Tensor<float> dx_split(dx_ref.shape());
  const std::int64_t cut = cfg.h / 3;
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx_split, Origin2{0, 0}, p,
                       Range2{0, cut, 0, cfg.w}, oh, ow, ConvAlgo::kIm2col);
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx_split, Origin2{0, 0}, p,
                       Range2{cut, cfg.h, 0, cfg.w}, oh, ow, ConvAlgo::kIm2col);
  EXPECT_EQ(0, std::memcmp(dx.data(), dx_split.data(),
                           dx.size() * sizeof(float)));

  // Thread-count determinism (strip heights and reuse depend on shapes
  // alone, never on the budget).
  Tensor<float> dx8(dx_ref.shape());
  {
    parallel::ThreadGuard guard(8);
    conv2d_backward_data(dy, Origin2{0, 0}, w, dx8, Origin2{0, 0}, p, xr, oh,
                         ow, ConvAlgo::kIm2col);
  }
  EXPECT_EQ(0, std::memcmp(dx.data(), dx8.data(), dx.size() * sizeof(float)));
}

TEST(ConvAlgoHeuristic, AutoResolvesOnLayerConstantsOnly) {
  const ConvParams deep{3, 3, 1, 1, 1, 1};
  // 64·3·3 = 576 deep, 64 filters: GEMM territory.
  EXPECT_EQ(resolve_conv_algo(ConvAlgo::kAuto, deep, 64, 64), ConvAlgo::kIm2col);
  // 3·3·3 = 27 shallow first layer: direct.
  EXPECT_EQ(resolve_conv_algo(ConvAlgo::kAuto, deep, 3, 64), ConvAlgo::kDirect);
  // Few filters: packing traffic is never amortized.
  EXPECT_EQ(resolve_conv_algo(ConvAlgo::kAuto, deep, 64, 4), ConvAlgo::kDirect);
  // Explicit choices pass through untouched.
  EXPECT_EQ(resolve_conv_algo(ConvAlgo::kDirect, deep, 64, 64), ConvAlgo::kDirect);
  EXPECT_EQ(resolve_conv_algo(ConvAlgo::kIm2col, deep, 3, 4), ConvAlgo::kIm2col);
}

TEST(ConvNaN, BackwardPathsPropagateNaN) {
  // A NaN in dy must reach every dx/dw element its window touches, even
  // where weights or activations are zero (the seed's `g == 0` skip only
  // dropped zero *gradients*; the NaN case it could mask is 0·NaN from
  // zero weights, exercised here with w = 0 and x = 0).
  const ConvParams p{3, 3, 1, 1, 1, 1};
  Tensor<float> dy(Shape4{1, 1, 5, 5});
  Tensor<float> w(Shape4{1, 1, 3, 3});  // all-zero weights
  Tensor<float> x(Shape4{1, 1, 5, 5});  // all-zero activations
  dy(0, 0, 2, 2) = std::numeric_limits<float>::quiet_NaN();
  for (const ConvAlgo algo : {ConvAlgo::kDirect, ConvAlgo::kIm2col}) {
    Tensor<float> dx(Shape4{1, 1, 5, 5});
    conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p,
                         Range2{0, 5, 0, 5}, 5, 5, algo);
    EXPECT_TRUE(std::isnan(dx(0, 0, 2, 2)))
        << "algo " << int(algo) << ": 0-weight · NaN-gradient must be NaN";
    Tensor<float> xbuf = make_padded_buffer(x, 1, 1);
    Tensor<float> dw(w.shape());
    conv2d_backward_filter(xbuf, Origin2{-1, -1}, dy, Origin2{0, 0}, dw, p,
                           Range2{0, 5, 0, 5}, false, algo);
    EXPECT_TRUE(std::isnan(dw(0, 0, 1, 1)))
        << "algo " << int(algo) << ": NaN-gradient · 0-activation must be NaN";
  }
}

// Numerical gradient checks pin the analytic backward kernels to the forward
// definition itself.
TEST(ConvGradients, NumericalBackwardData) {
  const ConvParams p{3, 3, 1, 1, 1, 1};
  Tensor<float> x(Shape4{1, 2, 5, 5}), w(Shape4{2, 2, 3, 3});
  Rng rng(23);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> y(Shape4{1, 2, 5, 5});
  Tensor<float> dy(y.shape());
  dy.fill_uniform(rng);

  // Analytic dx.
  Tensor<float> dx(x.shape());
  conv2d_backward_data_padded(dy, w, dx, p);

  // L = Σ y ⊙ dy; numerical dL/dx via central differences.
  const float eps = 1e-2f;
  for (std::int64_t i : {0L, 7L, 12L, 24L, 49L}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    conv2d_forward_padded(x, w, y, p);
    double lp = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lp += y.data()[j] * dy.data()[j];
    x.data()[i] = orig - eps;
    conv2d_forward_padded(x, w, y, p);
    double lm = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lm += y.data()[j] * dy.data()[j];
    x.data()[i] = orig;
    EXPECT_NEAR(dx.data()[i], (lp - lm) / (2 * eps), 5e-2) << "i=" << i;
  }
}

TEST(ConvGradients, NumericalBackwardFilter) {
  const ConvParams p{3, 3, 2, 2, 1, 1};
  Tensor<float> x(Shape4{2, 2, 6, 6}), w(Shape4{3, 2, 3, 3});
  Rng rng(29);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> y(Shape4{2, 3, 3, 3});
  Tensor<float> dy(y.shape());
  dy.fill_uniform(rng);

  Tensor<float> dw(w.shape());
  conv2d_backward_filter_padded(x, dy, dw, p);

  const float eps = 1e-2f;
  for (std::int64_t i : {0L, 5L, 17L, 30L, 53L}) {
    const float orig = w.data()[i];
    w.data()[i] = orig + eps;
    conv2d_forward_padded(x, w, y, p);
    double lp = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lp += y.data()[j] * dy.data()[j];
    w.data()[i] = orig - eps;
    conv2d_forward_padded(x, w, y, p);
    double lm = 0;
    for (std::int64_t j = 0; j < y.size(); ++j) lm += y.data()[j] * dy.data()[j];
    w.data()[i] = orig;
    EXPECT_NEAR(dw.data()[i], (lp - lm) / (2 * eps), 5e-2) << "i=" << i;
  }
}

TEST(Conv, KnownTinyCase) {
  // 1x1 input 3x3 of ones, single 3x3 ones filter, pad 1: center output = 9,
  // edge = 6, corner = 4.
  const ConvParams p{3, 3, 1, 1, 1, 1};
  Tensor<float> x(Shape4{1, 1, 3, 3}), w(Shape4{1, 1, 3, 3});
  x.fill(1.0f);
  w.fill(1.0f);
  Tensor<float> y(Shape4{1, 1, 3, 3});
  conv2d_forward_padded(x, w, y, p);
  EXPECT_FLOAT_EQ(y(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1), 6.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 4.0f);
}

TEST(Conv, FilterAccumulateFlag) {
  const ConvParams p{1, 1, 1, 1, 0, 0};
  Tensor<float> x(Shape4{1, 1, 2, 2}), dy(Shape4{1, 1, 2, 2});
  x.fill(1.0f);
  dy.fill(1.0f);
  Tensor<float> dw(Shape4{1, 1, 1, 1});
  conv2d_backward_filter_padded(x, dy, dw, p, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(dw(0, 0, 0, 0), 4.0f);
  conv2d_backward_filter_padded(x, dy, dw, p, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(dw(0, 0, 0, 0), 8.0f);
}

TEST(Conv, EmptyRangeIsNoop) {
  const ConvParams p{3, 3, 1, 1, 1, 1};
  Tensor<float> x(Shape4{1, 1, 5, 5}), w(Shape4{1, 1, 3, 3}), y(Shape4{1, 1, 3, 3});
  y.fill(7.0f);
  conv2d_forward(x, Origin2{0, 0}, w, y, Origin2{0, 0}, p, Range2{2, 2, 0, 3});
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 7.0f);  // untouched
}

TEST(Conv, MismatchedKernelShapeThrows) {
  const ConvParams p{3, 3, 1, 1, 1, 1};
  Tensor<float> x(Shape4{1, 1, 5, 5}), w(Shape4{1, 1, 5, 5}), y(Shape4{1, 1, 5, 5});
  EXPECT_THROW(conv2d_forward_padded(x, w, y, p), Error);
}

TEST(Conv, RectangularKernelsSupported) {
  // The kernel layer supports kh != kw even though the layer API is square;
  // verify against the padded oracle.
  const ConvParams p{3, 5, 1, 1, 1, 2};
  Tensor<float> x(Shape4{2, 2, 7, 9});
  Tensor<float> w(Shape4{3, 2, 3, 5});
  Rng rng(61);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> y_ref(Shape4{2, 3, p.out_h(7), p.out_w(9)});
  conv2d_forward_padded(x, w, y_ref, p);

  Tensor<float> xbuf(Shape4{2, 2, 7 + 2, 9 + 4});
  Box4 src, dst;
  src.ext[0] = 2; src.ext[1] = 2; src.ext[2] = 7; src.ext[3] = 9;
  dst = src; dst.off[2] = 1; dst.off[3] = 2;
  copy_box(x, src, xbuf, dst);
  Tensor<float> y(y_ref.shape());
  conv2d_forward(xbuf, Origin2{-1, -2}, w, y, Origin2{0, 0}, p,
                 Range2{0, y.shape().h, 0, y.shape().w});
  for (std::int64_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y.data()[i], y_ref.data()[i], 1e-4f);
  }
}

TEST(Conv, StrideThreeBackwardDataMatchesOracle) {
  const ConvParams p{5, 5, 3, 3, 2, 2};
  const std::int64_t H = 13, W = 13;
  Tensor<float> dy(Shape4{1, 2, p.out_h(H), p.out_w(W)});
  Tensor<float> w(Shape4{2, 3, 5, 5});
  Rng rng(67);
  dy.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> dx_ref(Shape4{1, 3, H, W});
  conv2d_backward_data_padded(dy, w, dx_ref, p);
  Tensor<float> dx(dx_ref.shape());
  conv2d_backward_data(dy, Origin2{0, 0}, w, dx, Origin2{0, 0}, p,
                       Range2{0, H, 0, W}, dy.shape().h, dy.shape().w);
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    ASSERT_NEAR(dx.data()[i], dx_ref.data()[i], 1e-4f) << i;
  }
}

TEST(Conv, AsymmetricStrideForward) {
  const ConvParams p{3, 3, 2, 1, 1, 1};  // stride 2 vertically, 1 horizontally
  Tensor<float> x(Shape4{1, 1, 8, 8});
  Tensor<float> w(Shape4{1, 1, 3, 3});
  Rng rng(71);
  x.fill_uniform(rng);
  w.fill_uniform(rng);
  Tensor<float> y(Shape4{1, 1, p.out_h(8), p.out_w(8)});
  EXPECT_EQ(y.shape().h, 4);
  EXPECT_EQ(y.shape().w, 8);
  conv2d_forward_padded(x, w, y, p);
  // Spot-check one interior value by hand.
  float acc = 0;
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) acc += x(0, 0, 2 * 2 - 1 + a, 3 - 1 + b) * w(0, 0, a, b);
  EXPECT_NEAR(y(0, 0, 2, 3), acc, 1e-5f);
}

}  // namespace
}  // namespace distconv::kernels
