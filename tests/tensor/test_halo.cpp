#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "comm/comm.hpp"
#include "tensor/halo.hpp"

namespace distconv {
namespace {

// Fill a distributed tensor's owned region with a globally-determined value
// so halo contents can be checked against the global coordinate function.
template <typename T>
void fill_global_pattern(DistTensor<T>& t) {
  const Box4 owned = t.owned_box();
  for (std::int64_t n = 0; n < owned.ext[0]; ++n)
    for (std::int64_t c = 0; c < owned.ext[1]; ++c)
      for (std::int64_t h = 0; h < owned.ext[2]; ++h)
        for (std::int64_t w = 0; w < owned.ext[3]; ++w) {
          const std::int64_t gn = owned.off[0] + n, gc = owned.off[1] + c,
                             gh = owned.off[2] + h, gw = owned.off[3] + w;
          t.at_owned(n, c, h, w) =
              static_cast<T>(((gn * 131 + gc) * 131 + gh) * 131 + gw);
        }
}

// Expected buffer value at a global coordinate: pattern inside the domain,
// zero (padding) outside.
template <typename T>
T expected_at(const Shape4& global, std::int64_t gn, std::int64_t gc,
              std::int64_t gh, std::int64_t gw) {
  if (gh < 0 || gh >= global.h || gw < 0 || gw >= global.w) return T(0);
  return static_cast<T>(((gn * 131 + gc) * 131 + gh) * 131 + gw);
}

struct HaloCase {
  int grid_h, grid_w;
  std::int64_t H, W;
  int K, S;
};

class HaloSweep : public ::testing::TestWithParam<HaloCase> {};

INSTANTIATE_TEST_SUITE_P(
    GridsAndStencils, HaloSweep,
    ::testing::Values(HaloCase{2, 1, 12, 8, 3, 1}, HaloCase{1, 2, 8, 12, 3, 1},
                      HaloCase{2, 2, 12, 12, 3, 1}, HaloCase{3, 3, 15, 15, 3, 1},
                      HaloCase{2, 2, 16, 16, 5, 1}, HaloCase{4, 1, 16, 8, 7, 1},
                      HaloCase{2, 2, 16, 16, 3, 2}, HaloCase{4, 4, 32, 32, 5, 2},
                      HaloCase{3, 2, 17, 13, 3, 1}));

TEST_P(HaloSweep, MarginsMatchNeighbourDataAndPadding) {
  const auto cfg = GetParam();
  const int P = cfg.grid_h * cfg.grid_w;
  comm::World world(P);
  world.run([&cfg](comm::Comm& comm) {
    const Shape4 global{2, 3, cfg.H, cfg.W};
    const ProcessGrid grid{1, 1, cfg.grid_h, cfg.grid_w};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{cfg.K, cfg.S, cfg.K / 2};
    const auto mh = forward_stencil_margins(
        dist.h, DimPartition(spec.out_size(global.h), grid.h), spec);
    const auto mw = forward_stencil_margins(
        dist.w, DimPartition(spec.out_size(global.w), grid.w), spec);

    DistTensor<float> t(&comm, dist, mh, mw);
    fill_global_pattern(t);
    HaloExchange<float> hx(&t);
    hx.exchange();

    // Every buffer position (owned + margins) must match the global pattern
    // (or zero padding outside the domain).
    const Box4 owned = t.owned_box();
    const std::int64_t hlo = t.h_margin_lo(), whi = t.w_margin_hi();
    const std::int64_t wlo = t.w_margin_lo(), hhi = t.h_margin_hi();
    for (std::int64_t n = 0; n < owned.ext[0]; ++n)
      for (std::int64_t c = 0; c < owned.ext[1]; ++c)
        for (std::int64_t h = -hlo; h < owned.ext[2] + hhi; ++h)
          for (std::int64_t w = -wlo; w < owned.ext[3] + whi; ++w) {
            const float got = t.at_owned(n, c, h, w);
            const float want = expected_at<float>(
                global, owned.off[0] + n, owned.off[1] + c, owned.off[2] + h,
                owned.off[3] + w);
            ASSERT_FLOAT_EQ(got, want)
                << "n=" << n << " c=" << c << " h=" << h << " w=" << w
                << " grid=" << cfg.grid_h << "x" << cfg.grid_w;
          }
  });
}

TEST_P(HaloSweep, RefreshOpMatchesBlockingExchange) {
  // The progress-engine form of the exchange: tag drawn at enqueue, wire
  // work deferred to the engine, margins unpacked at completion — buffer
  // contents (owned + margins) must equal the blocking exchange()'s.
  const auto cfg = GetParam();
  const int P = cfg.grid_h * cfg.grid_w;
  comm::World world(P);
  world.run([&cfg](comm::Comm& comm) {
    const Shape4 global{2, 3, cfg.H, cfg.W};
    const ProcessGrid grid{1, 1, cfg.grid_h, cfg.grid_w};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{cfg.K, cfg.S, cfg.K / 2};
    const auto mh = forward_stencil_margins(
        dist.h, DimPartition(spec.out_size(global.h), grid.h), spec);
    const auto mw = forward_stencil_margins(
        dist.w, DimPartition(spec.out_size(global.w), grid.w), spec);

    DistTensor<float> blocking(&comm, dist, mh, mw), nb(&comm, dist, mh, mw);
    fill_global_pattern(blocking);
    fill_global_pattern(nb);
    HaloExchange<float> hx_blocking(&blocking);
    hx_blocking.exchange();

    HaloExchange<float> hx_nb(&nb);
    comm::CollectiveEngine engine;
    engine.enqueue(
        std::make_unique<HaloRefreshOp<float>>(hx_nb, HaloOp::kReplace, comm));
    engine.drain();
    EXPECT_TRUE(engine.idle());

    const auto& a = blocking.buffer();
    const auto& b = nb.buffer();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<std::size_t>(a.size()) * sizeof(float)));
  });
}

TEST(Halo, NoMarginsNoTraffic) {
  comm::World world(4);
  world.reset_stats();
  world.run([](comm::Comm& comm) {
    const Shape4 global{1, 1, 8, 8};
    const ProcessGrid grid{1, 1, 2, 2};
    DistTensor<float> t(&comm, Distribution::make(global, grid));
    HaloExchange<float> hx(&t);
    EXPECT_EQ(hx.num_send_transfers(), 0);
    hx.exchange();
  });
  EXPECT_EQ(world.stats().bytes, 0u);
}

TEST(Halo, SendVolumeMatchesAnalyticFormula) {
  // Interior rank of a 1D H decomposition with K=3 (O=1) sends O rows of
  // width W in each direction: 2 * O * N * C * W elements total (the
  // 2·SR(O·I_N·I_C·I_W) term of FP_ℓ in §V-A).
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{2, 3, 16, 10};
    const ProcessGrid grid{1, 1, 4, 1};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{3, 1, 1};
    const auto mh =
        forward_stencil_margins(dist.h, DimPartition(16, 4), spec);
    DistTensor<float> t(&comm, dist, mh, MarginTable(1));
    HaloExchange<float> hx(&t);
    const std::size_t row = 2 * 3 * 10;  // N*C*W elements
    const bool interior = comm.rank() == 1 || comm.rank() == 2;
    const std::size_t expect = (interior ? 2 : 1) * row * sizeof(float);
    EXPECT_EQ(hx.send_bytes_per_exchange(), expect) << "rank " << comm.rank();
  });
}

TEST(Halo, CornerExchangeHappensOn2x2Grid) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{1, 1, 8, 8};
    const ProcessGrid grid{1, 1, 2, 2};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{3, 1, 1};
    const auto mh = forward_stencil_margins(dist.h, DimPartition(8, 2), spec);
    const auto mw = forward_stencil_margins(dist.w, DimPartition(8, 2), spec);
    DistTensor<float> t(&comm, dist, mh, mw);
    HaloExchange<float> hx(&t);
    // Each rank of a 2x2 grid has 3 neighbours: edge, edge, corner.
    EXPECT_EQ(hx.num_send_transfers(), 3);
    EXPECT_EQ(hx.num_recv_transfers(), 3);
  });
}

TEST(Halo, StartFinishAllowsOverlappedWork) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    const Shape4 global{1, 1, 8, 4};
    const ProcessGrid grid{1, 1, 2, 1};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{3, 1, 1};
    const auto mh = forward_stencil_margins(dist.h, DimPartition(8, 2), spec);
    DistTensor<float> t(&comm, dist, mh, MarginTable(1));
    fill_global_pattern(t);
    HaloExchange<float> hx(&t);
    hx.start();
    // "Interior work" happens here; then completion.
    double sum = 0;
    for (int i = 0; i < 1000; ++i) sum += i;
    EXPECT_GT(sum, 0);
    hx.finish();
    // Margin row must hold neighbour data.
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, 4, 0), expected_at<float>(global, 0, 0, 4, 0));
    } else {
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, -1, 3),
                      expected_at<float>(global, 0, 0, 3, 3));
    }
  });
}

TEST(Halo, DoubleStartThrows) {
  comm::World world(1);
  world.run([](comm::Comm& comm) {
    DistTensor<float> t(&comm, Distribution::make(Shape4{1, 1, 4, 4}, ProcessGrid{}));
    HaloExchange<float> hx(&t);
    hx.start();
    EXPECT_THROW(hx.start(), Error);
    hx.finish();
  });
}

TEST(Halo, AccumulateSumsMarginIntoOwner) {
  // Reverse exchange: each rank writes a value into its margins; the owner
  // accumulates it onto its edge rows.
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    const Shape4 global{1, 1, 8, 2};
    const ProcessGrid grid{1, 1, 2, 1};
    const auto dist = Distribution::make(global, grid);
    MarginTable mh(2);
    mh.lo = {0, 1};
    mh.hi = {1, 0};
    DistTensor<float> t(&comm, dist, mh, MarginTable(1));
    // Owned values 1.0 everywhere; margins hold 0.25.
    const Box4 ib = t.interior_box();
    t.buffer().fill(0.25f);
    for (std::int64_t h = 0; h < ib.ext[2]; ++h)
      for (std::int64_t w = 0; w < ib.ext[3]; ++w)
        t.at_owned(0, 0, h, w) = 1.0f;
    HaloExchange<float> hx(&t);
    hx.exchange(HaloOp::kSum);
    // Rank 0's last owned row and rank 1's first owned row get +0.25.
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, 3, 0), 1.25f);
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, 2, 0), 1.0f);
    } else {
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, 0, 1), 1.25f);
      EXPECT_FLOAT_EQ(t.at_owned(0, 0, 1, 1), 1.0f);
    }
  });
}

TEST(Halo, TooFinePartitionThrows) {
  // 4-way split of 8 rows with a kernel needing 3-row halos: margins exceed
  // neighbour blocks of 2 rows.
  comm::World world(4);
  EXPECT_THROW(
      world.run([](comm::Comm& comm) {
        const Shape4 global{1, 1, 8, 1};
        const ProcessGrid grid{1, 1, 4, 1};
        const auto dist = Distribution::make(global, grid);
        const StencilSpec spec{7, 1, 3};
        const auto mh = forward_stencil_margins(dist.h, DimPartition(8, 4), spec);
        DistTensor<float> t(&comm, dist, mh, MarginTable(1));
        HaloExchange<float> hx(&t);
        hx.exchange();
      }),
      Error);
}


TEST_P(HaloSweep, TwoPhaseVariantMatchesDirectExchange) {
  const auto cfg = GetParam();
  const int P = cfg.grid_h * cfg.grid_w;
  comm::World world(P);
  world.run([&cfg](comm::Comm& comm) {
    const Shape4 global{2, 2, cfg.H, cfg.W};
    const ProcessGrid grid{1, 1, cfg.grid_h, cfg.grid_w};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{cfg.K, cfg.S, cfg.K / 2};
    const auto mh = forward_stencil_margins(
        dist.h, DimPartition(spec.out_size(global.h), grid.h), spec);
    const auto mw = forward_stencil_margins(
        dist.w, DimPartition(spec.out_size(global.w), grid.w), spec);

    DistTensor<float> direct(&comm, dist, mh, mw);
    DistTensor<float> two_phase(&comm, dist, mh, mw);
    fill_global_pattern(direct);
    fill_global_pattern(two_phase);
    HaloExchange<float> hx_direct(&direct);
    HaloExchange<float> hx_two(&two_phase);
    hx_direct.exchange();
    hx_two.exchange_two_phase();
    ASSERT_EQ(direct.buffer().size(), two_phase.buffer().size());
    for (std::int64_t i = 0; i < direct.buffer().size(); ++i) {
      ASSERT_EQ(direct.buffer().data()[i], two_phase.buffer().data()[i]) << i;
    }
  });
}

TEST(Halo, TwoPhaseUsesFewerMessagesOn2x2Grid) {
  // Corner traffic collapses into the W-phase: each rank of a 2x2 grid sends
  // 2 messages (one per phase) instead of 3 (edge + edge + corner).
  comm::World world(4);
  world.reset_stats();
  world.run([](comm::Comm& comm) {
    const Shape4 global{1, 1, 8, 8};
    const ProcessGrid grid{1, 1, 2, 2};
    const auto dist = Distribution::make(global, grid);
    const StencilSpec spec{3, 1, 1};
    const auto mh = forward_stencil_margins(dist.h, DimPartition(8, 2), spec);
    const auto mw = forward_stencil_margins(dist.w, DimPartition(8, 2), spec);
    DistTensor<float> t(&comm, dist, mh, mw);
    HaloExchange<float> hx(&t);
    hx.exchange_two_phase();
  });
  EXPECT_EQ(world.stats().messages, 4u * 2u);  // 4 ranks x 2 messages
  // (the direct 8-direction plan sends 3 per rank on this grid)
}

}  // namespace
}  // namespace distconv
