#include <gtest/gtest.h>

#include "tensor/margins.hpp"

namespace distconv {
namespace {

TEST(StencilSpec, OutSizeMatchesConvArithmetic) {
  EXPECT_EQ((StencilSpec{3, 1, 1}.out_size(224)), 224);  // "same" 3x3
  EXPECT_EQ((StencilSpec{7, 2, 3}.out_size(224)), 112);  // ResNet conv1
  EXPECT_EQ((StencilSpec{1, 1, 0}.out_size(28)), 28);    // 1x1
  EXPECT_EQ((StencilSpec{5, 2, 2}.out_size(2048)), 1024);  // mesh conv1_1
  EXPECT_EQ((StencilSpec{3, 2, 1}.out_size(64)), 32);    // mesh conv6_1
}

TEST(ForwardMargins, SamePaddingK3GivesHaloOne) {
  // H=16 over 4 parts, K=3 S=1 P=1: interior parts need 1 row each side;
  // boundary parts carry the zero padding as a margin on the outside.
  const StencilSpec spec{3, 1, 1};
  DimPartition in(16, 4), out(spec.out_size(16), 4);
  const auto m = forward_stencil_margins(in, out, spec);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(m.lo[i], 1) << i;
    EXPECT_EQ(m.hi[i], 1) << i;
  }
}

TEST(ForwardMargins, KOneNeedsNoHalo) {
  const StencilSpec spec{1, 1, 0};
  DimPartition in(28, 4), out(28, 4);
  const auto m = forward_stencil_margins(in, out, spec);
  EXPECT_TRUE(m.all_zero());
}

TEST(ForwardMargins, LargeKernelGrowsHalo) {
  // K=7 P=3 S=1: O=3 rows each side.
  const StencilSpec spec{7, 1, 3};
  DimPartition in(32, 2), out(32, 2);
  const auto m = forward_stencil_margins(in, out, spec);
  EXPECT_EQ(m.lo[0], 3);  // padding margin at the global boundary
  EXPECT_EQ(m.hi[0], 3);  // halo from part 1
  EXPECT_EQ(m.lo[1], 3);
  EXPECT_EQ(m.hi[1], 3);
}

TEST(ForwardMargins, StrideTwoAlignedBlocksNeedAsymmetricHalo) {
  // H=16, K=3 S=2 P=1, H_out=8 over 2 parts: part 0 owns out rows [0,4) →
  // needs in rows [-1, 7); owns in [0,8) → lo=1 (padding), hi=0.
  // Part 1 owns out [4,8) → needs in [7,15); owns [8,16) → lo=1, hi=0.
  const StencilSpec spec{3, 2, 1};
  DimPartition in(16, 2), out(8, 2);
  const auto m = forward_stencil_margins(in, out, spec);
  EXPECT_EQ(m.lo[0], 1);
  EXPECT_EQ(m.hi[0], 0);
  EXPECT_EQ(m.lo[1], 1);
  EXPECT_EQ(m.hi[1], 0);
}

TEST(ForwardMargins, NeededRangeCoverageProperty) {
  // Property: for every part, [start - lo, end + hi) covers every input row
  // any of its output rows reads (clipped to the global range).
  for (int H : {8, 12, 16, 31}) {
    for (int parts : {1, 2, 3, 4}) {
      for (int K : {1, 3, 5, 7}) {
        for (int S : {1, 2}) {
          const int P = K / 2;
          const StencilSpec spec{K, S, P};
          const std::int64_t Ho = spec.out_size(H);
          if (Ho < parts || H < parts) continue;
          DimPartition in(H, parts), out(Ho, parts);
          const auto m = forward_stencil_margins(in, out, spec);
          for (int i = 0; i < parts; ++i) {
            const std::int64_t cover_lo = in.start(i) - m.lo[i];
            const std::int64_t cover_hi = (in.end(i) - 1) + m.hi[i];
            for (std::int64_t o = out.start(i); o < out.end(i); ++o) {
              const std::int64_t need_lo = std::int64_t{S} * o - P;
              const std::int64_t need_hi = std::int64_t{S} * o - P + K - 1;
              EXPECT_LE(cover_lo, need_lo)
                  << "H=" << H << " parts=" << parts << " K=" << K << " S=" << S;
              EXPECT_GE(cover_hi, need_hi);
            }
          }
        }
      }
    }
  }
}

TEST(TransposeMargins, KOneNoHalo) {
  const StencilSpec spec{1, 1, 0};
  DimPartition in(28, 4), out(28, 4);
  const auto m = transpose_stencil_margins(in, out, spec);
  EXPECT_TRUE(m.all_zero());
}

TEST(TransposeMargins, CoverageProperty) {
  // Property: for every part, the dL/dy rows needed to compute every owned
  // input row's gradient are inside [out.start - lo, out.end + hi).
  for (int H : {8, 12, 16, 31}) {
    for (int parts : {1, 2, 3, 4}) {
      for (int K : {1, 3, 5}) {
        for (int S : {1, 2}) {
          const int P = K / 2;
          const StencilSpec spec{K, S, P};
          const std::int64_t Ho = spec.out_size(H);
          if (Ho < parts || H < parts) continue;
          DimPartition in(H, parts), out(Ho, parts);
          const auto m = transpose_stencil_margins(in, out, spec);
          for (int i = 0; i < parts; ++i) {
            const std::int64_t cover_lo = out.start(i) - m.lo[i];
            const std::int64_t cover_hi = (out.end(i) - 1) + m.hi[i];
            for (std::int64_t r = in.start(i); r < in.end(i); ++r) {
              // Every output row j with S*j - P + a == r for a in [0, K).
              for (std::int64_t j = 0; j < Ho; ++j) {
                const std::int64_t a = r - (S * j - P);
                if (a < 0 || a >= K) continue;
                EXPECT_LE(cover_lo, j) << "H=" << H << " parts=" << parts
                                       << " K=" << K << " S=" << S << " i=" << i;
                EXPECT_GE(cover_hi, j);
              }
            }
          }
        }
      }
    }
  }
}

TEST(MarginTable, MergeTakesMax) {
  MarginTable a(2), b(2);
  a.lo = {1, 0};
  a.hi = {0, 2};
  b.lo = {0, 3};
  b.hi = {1, 1};
  a.merge_max(b);
  EXPECT_EQ(a.lo[0], 1);
  EXPECT_EQ(a.lo[1], 3);
  EXPECT_EQ(a.hi[0], 1);
  EXPECT_EQ(a.hi[1], 2);
}

TEST(MarginTable, MergeWithEmptyAdoptsOther) {
  MarginTable a, b(3);
  b.lo = {1, 1, 1};
  a.merge_max(b);
  EXPECT_EQ(a.parts(), 3);
  EXPECT_EQ(a.lo[2], 1);
}

TEST(MarginTable, MergeSizeMismatchThrows) {
  MarginTable a(2), b(3);
  EXPECT_THROW(a.merge_max(b), Error);
}

}  // namespace
}  // namespace distconv
