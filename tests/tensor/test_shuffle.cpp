#include <gtest/gtest.h>

#include <cstring>

#include "comm/comm.hpp"
#include "tensor/shuffle.hpp"

namespace distconv {
namespace {

template <typename T>
void fill_pattern(DistTensor<T>& t) {
  const Box4 owned = t.owned_box();
  for (std::int64_t n = 0; n < owned.ext[0]; ++n)
    for (std::int64_t c = 0; c < owned.ext[1]; ++c)
      for (std::int64_t h = 0; h < owned.ext[2]; ++h)
        for (std::int64_t w = 0; w < owned.ext[3]; ++w) {
          const std::int64_t gn = owned.off[0] + n, gc = owned.off[1] + c,
                             gh = owned.off[2] + h, gw = owned.off[3] + w;
          t.at_owned(n, c, h, w) =
              static_cast<T>(((gn * 101 + gc) * 101 + gh) * 101 + gw);
        }
}

template <typename T>
void expect_pattern(const DistTensor<T>& t) {
  const Box4 owned = t.owned_box();
  for (std::int64_t n = 0; n < owned.ext[0]; ++n)
    for (std::int64_t c = 0; c < owned.ext[1]; ++c)
      for (std::int64_t h = 0; h < owned.ext[2]; ++h)
        for (std::int64_t w = 0; w < owned.ext[3]; ++w) {
          const std::int64_t gn = owned.off[0] + n, gc = owned.off[1] + c,
                             gh = owned.off[2] + h, gw = owned.off[3] + w;
          ASSERT_FLOAT_EQ(t.at_owned(n, c, h, w),
                          static_cast<T>(((gn * 101 + gc) * 101 + gh) * 101 + gw))
              << "(" << gn << "," << gc << "," << gh << "," << gw << ")";
        }
}

struct ShuffleCase {
  ProcessGrid src, dst;
};

class ShuffleSweep : public ::testing::TestWithParam<ShuffleCase> {};

INSTANTIATE_TEST_SUITE_P(
    GridPairs, ShuffleSweep,
    ::testing::Values(
        // Sample-parallel → hybrid (the paper's common transition).
        ShuffleCase{ProcessGrid{8, 1, 1, 1}, ProcessGrid{2, 1, 2, 2}},
        // Hybrid → sample-parallel.
        ShuffleCase{ProcessGrid{2, 1, 2, 2}, ProcessGrid{8, 1, 1, 1}},
        // Spatial H split → spatial W split.
        ShuffleCase{ProcessGrid{1, 1, 8, 1}, ProcessGrid{1, 1, 1, 8}},
        // 2x4 → 4x2 spatial regrid.
        ShuffleCase{ProcessGrid{1, 1, 2, 4}, ProcessGrid{1, 1, 4, 2}},
        // Identity.
        ShuffleCase{ProcessGrid{2, 1, 2, 2}, ProcessGrid{2, 1, 2, 2}}));

TEST_P(ShuffleSweep, RedistributesExactly) {
  const auto cfg = GetParam();
  ASSERT_EQ(cfg.src.size(), cfg.dst.size());
  comm::World world(cfg.src.size());
  world.run([&cfg](comm::Comm& comm) {
    const Shape4 global{8, 3, 16, 16};
    const auto src_dist = Distribution::make(global, cfg.src);
    const auto dst_dist = Distribution::make(global, cfg.dst);
    DistTensor<float> src(&comm, src_dist), dst(&comm, dst_dist);
    fill_pattern(src);
    Shuffler<float> shuffler(src_dist, dst_dist, comm);
    shuffler.run(src, dst);
    expect_pattern(dst);
  });
}

TEST_P(ShuffleSweep, NonblockingOpMatchesBlockingBitwise) {
  // The progress-engine form of every sweep case: same plan, same boxes,
  // driven round by round through a CollectiveEngine — destination contents
  // must equal the blocking run()'s exactly.
  const auto cfg = GetParam();
  comm::World world(cfg.src.size());
  world.run([&cfg](comm::Comm& comm) {
    const Shape4 global{8, 3, 16, 16};
    const auto src_dist = Distribution::make(global, cfg.src);
    const auto dst_dist = Distribution::make(global, cfg.dst);
    DistTensor<float> src(&comm, src_dist);
    DistTensor<float> dst_blocking(&comm, dst_dist), dst_nb(&comm, dst_dist);
    fill_pattern(src);
    Shuffler<float> shuffler(src_dist, dst_dist, comm);
    shuffler.run(src, dst_blocking);
    comm::CollectiveEngine engine;
    engine.enqueue(shuffler.make_op(src, dst_nb));
    engine.drain();
    EXPECT_TRUE(engine.idle());
    const auto& a = dst_blocking.buffer();
    const auto& b = dst_nb.buffer();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<std::size_t>(a.size()) * sizeof(float)));
  });
}

TEST(Shuffle, NonblockingOpTicketedBehindOtherTraffic) {
  // A pre-posted shuffle op queued behind an allreduce (the model's FIFO
  // when a gradient completion is still in flight) must deliver the same
  // bytes once drained to its ticket, with blocking collective traffic
  // interleaved on the same communicator.
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{4, 2, 8, 8};
    const auto a = Distribution::make(global, ProcessGrid{4, 1, 1, 1});
    const auto b = Distribution::make(global, ProcessGrid{1, 1, 2, 2});
    DistTensor<float> src(&comm, a), dst_blocking(&comm, b), dst_nb(&comm, b);
    fill_pattern(src);
    Shuffler<float> shuffler(a, b, comm);
    shuffler.run(src, dst_blocking);

    std::vector<float> grad(8192, comm.rank() + 1.0f);
    comm::CollectiveEngine engine;
    engine.enqueue(comm::make_iallreduce(comm, grad.data(), grad.size(),
                                         comm::ReduceOp::kSum));
    const std::uint64_t ticket = engine.enqueue(shuffler.make_op(src, dst_nb));
    // Blocking traffic on the same comm while both ops are in flight.
    float probe = static_cast<float>(comm.rank());
    comm::allreduce(comm, &probe, 1, comm::ReduceOp::kSum);
    EXPECT_FLOAT_EQ(probe, 6.0f);
    engine.drain_until(ticket);
    EXPECT_TRUE(engine.idle());
    EXPECT_FLOAT_EQ(grad[0], 10.0f);  // 1+2+3+4
    EXPECT_EQ(0, std::memcmp(dst_blocking.buffer().data(), dst_nb.buffer().data(),
                             static_cast<std::size_t>(dst_nb.buffer().size()) *
                                 sizeof(float)));
  });
}

TEST(Shuffle, IdentityMovesNoRemoteData) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{4, 1, 8, 8};
    const auto dist = Distribution::make(global, ProcessGrid{4, 1, 1, 1});
    Shuffler<float> s(dist, dist, comm);
    EXPECT_TRUE(s.is_identity());
    EXPECT_EQ(s.remote_send_elements(), 0u);
  });
}

TEST(Shuffle, FullRedistributionVolume) {
  // Sample-parallel → pure spatial: every rank keeps exactly 1/p of its data
  // (the intersection of its sample block with its spatial block).
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{4, 2, 8, 8};
    const auto a = Distribution::make(global, ProcessGrid{4, 1, 1, 1});
    const auto b = Distribution::make(global, ProcessGrid{1, 1, 4, 1});
    Shuffler<float> s(a, b, comm);
    const std::size_t local = static_cast<std::size_t>(global.size()) / 4;
    EXPECT_EQ(s.remote_send_elements(), local - local / 4);
  });
}

TEST(Shuffle, MismatchedGlobalShapesThrow) {
  comm::World world(2);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 const auto a =
                     Distribution::make(Shape4{2, 1, 4, 4}, ProcessGrid{2, 1, 1, 1});
                 const auto b =
                     Distribution::make(Shape4{2, 1, 4, 5}, ProcessGrid{2, 1, 1, 1});
                 Shuffler<float> s(a, b, comm);
               }),
               Error);
}

TEST(Shuffle, PreservesDataWithMarginsOnBothSides) {
  // Margins must not interfere with redistribution (interiors only move).
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{2, 1, 16, 16};
    const auto a = Distribution::make(global, ProcessGrid{1, 1, 4, 1});
    const auto b = Distribution::make(global, ProcessGrid{1, 1, 2, 2});
    const StencilSpec spec{3, 1, 1};
    const auto mha = forward_stencil_margins(a.h, DimPartition(16, 4), spec);
    const auto mhb = forward_stencil_margins(b.h, DimPartition(16, 2), spec);
    const auto mwb = forward_stencil_margins(b.w, DimPartition(16, 2), spec);
    DistTensor<float> src(&comm, a, mha, MarginTable(1));
    DistTensor<float> dst(&comm, b, mhb, mwb);
    fill_pattern(src);
    // Poison margins to verify they are not shuffled.
    dst.buffer().fill(-99.0f);
    Shuffler<float> s(a, b, comm);
    s.run(src, dst);
    expect_pattern(dst);
  });
}

TEST(GatherToAll, ReassemblesGlobalTensor) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 global{2, 2, 8, 8};
    const auto dist = Distribution::make(global, ProcessGrid{2, 1, 2, 1});
    DistTensor<float> t(&comm, dist);
    fill_pattern(t);
    const Tensor<float> full = gather_to_all(t);
    for (std::int64_t n = 0; n < global.n; ++n)
      for (std::int64_t c = 0; c < global.c; ++c)
        for (std::int64_t h = 0; h < global.h; ++h)
          for (std::int64_t w = 0; w < global.w; ++w)
            ASSERT_FLOAT_EQ(full(n, c, h, w),
                            ((n * 101 + c) * 101 + h) * 101 + w);
  });
}

}  // namespace
}  // namespace distconv
