#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace distconv {
namespace {

TEST(Shape4, SizeAndIndexing) {
  Shape4 s{2, 3, 4, 5};
  EXPECT_EQ(s.size(), 120);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s[3], 5);
  EXPECT_THROW(s[4], Error);
}

TEST(Shape4, Equality) {
  EXPECT_EQ((Shape4{1, 2, 3, 4}), (Shape4{1, 2, 3, 4}));
  EXPECT_NE((Shape4{1, 2, 3, 4}), (Shape4{1, 2, 3, 5}));
}

TEST(Strides4, ContiguousNCHW) {
  const auto st = Strides4::contiguous(Shape4{2, 3, 4, 5});
  EXPECT_EQ(st.w, 1);
  EXPECT_EQ(st.h, 5);
  EXPECT_EQ(st.c, 20);
  EXPECT_EQ(st.n, 60);
  EXPECT_EQ(st.offset(1, 2, 3, 4), 60 + 40 + 15 + 4);
}

TEST(Tensor, ZeroInitialized) {
  Tensor<float> t(Shape4{2, 2, 2, 2});
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, AccessorsRoundTrip) {
  Tensor<float> t(Shape4{2, 3, 4, 5});
  float v = 0;
  for (int n = 0; n < 2; ++n)
    for (int c = 0; c < 3; ++c)
      for (int h = 0; h < 4; ++h)
        for (int w = 0; w < 5; ++w) t(n, c, h, w) = v++;
  EXPECT_FLOAT_EQ(t(0, 0, 0, 0), 0);
  EXPECT_FLOAT_EQ(t(1, 2, 3, 4), 119);
  EXPECT_FLOAT_EQ(t(0, 2, 1, 3), 2 * 20 + 5 + 3);
}

TEST(Tensor, AtBoundsChecks) {
  Tensor<float> t(Shape4{1, 1, 2, 2});
  EXPECT_NO_THROW(t.at(0, 0, 1, 1));
  EXPECT_THROW(t.at(0, 0, 2, 0), Error);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
}

TEST(Tensor, FillUniformWithinBounds) {
  Tensor<double> t(Shape4{1, 2, 8, 8});
  Rng rng(3);
  t.fill_uniform(rng, -0.5, 0.5);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -0.5);
    EXPECT_LT(t.data()[i], 0.5);
  }
}

TEST(PackBox, RoundTripThroughContiguous) {
  Tensor<float> t(Shape4{2, 2, 4, 4});
  Rng rng(11);
  t.fill_uniform(rng);
  Box4 box;
  box.off[0] = 0;
  box.ext[0] = 2;
  box.off[1] = 1;
  box.ext[1] = 1;
  box.off[2] = 1;
  box.ext[2] = 2;
  box.off[3] = 2;
  box.ext[3] = 2;
  std::vector<float> packed(box.volume());
  pack_box(t, box, packed.data());
  EXPECT_FLOAT_EQ(packed[0], t(0, 1, 1, 2));
  EXPECT_FLOAT_EQ(packed[1], t(0, 1, 1, 3));
  EXPECT_FLOAT_EQ(packed[2], t(0, 1, 2, 2));

  Tensor<float> u(t.shape());
  unpack_box(packed.data(), box, u);
  for (int n = 0; n < 2; ++n)
    for (int h = 1; h < 3; ++h)
      for (int w = 2; w < 4; ++w) EXPECT_FLOAT_EQ(u(n, 1, h, w), t(n, 1, h, w));
  EXPECT_FLOAT_EQ(u(0, 0, 0, 0), 0.0f);  // outside the box untouched
}

TEST(PackBox, AccumulateAdds) {
  Tensor<float> t(Shape4{1, 1, 2, 2});
  t.fill(1.0f);
  Box4 box;
  box.ext[0] = box.ext[1] = 1;
  box.ext[2] = box.ext[3] = 2;
  std::vector<float> add(4, 2.5f);
  unpack_box_accumulate(add.data(), box, t);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t.data()[i], 3.5f);
}

TEST(CopyBox, CopiesBetweenTensors) {
  Tensor<int> a(Shape4{1, 1, 3, 3}), b(Shape4{1, 1, 5, 5});
  for (int h = 0; h < 3; ++h)
    for (int w = 0; w < 3; ++w) a(0, 0, h, w) = h * 3 + w;
  Box4 sb, db;
  sb.ext[0] = sb.ext[1] = 1;
  sb.ext[2] = sb.ext[3] = 3;
  db = sb;
  db.off[2] = 1;
  db.off[3] = 2;
  copy_box(a, sb, b, db);
  EXPECT_EQ(b(0, 0, 1, 2), 0);
  EXPECT_EQ(b(0, 0, 3, 4), 8);
  EXPECT_EQ(b(0, 0, 0, 0), 0);
}

TEST(CopyBox, MismatchedExtentsThrow) {
  Tensor<int> a(Shape4{1, 1, 3, 3}), b(Shape4{1, 1, 3, 3});
  Box4 sb, db;
  sb.ext[0] = sb.ext[1] = 1;
  sb.ext[2] = sb.ext[3] = 2;
  db = sb;
  db.ext[3] = 3;
  EXPECT_THROW(copy_box(a, sb, b, db), Error);
}

}  // namespace
}  // namespace distconv
