#include <gtest/gtest.h>

#include "tensor/partition.hpp"
#include "tensor/tensor.hpp"

namespace distconv {
namespace {

TEST(DimPartition, EvenSplit) {
  DimPartition p(12, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(p.start(i), 3 * i);
    EXPECT_EQ(p.size(i), 3);
  }
}

TEST(DimPartition, UnevenSplitFrontLoaded) {
  DimPartition p(10, 4);  // sizes 3,3,2,2
  EXPECT_EQ(p.size(0), 3);
  EXPECT_EQ(p.size(1), 3);
  EXPECT_EQ(p.size(2), 2);
  EXPECT_EQ(p.size(3), 2);
  EXPECT_EQ(p.start(2), 6);
  EXPECT_EQ(p.end(3), 10);
}

TEST(DimPartition, CoversWholeRangeWithoutOverlap) {
  for (std::int64_t g : {1, 5, 7, 16, 17, 101}) {
    for (int parts : {1, 2, 3, 4, 7, 16}) {
      if (parts > g) continue;
      DimPartition p(g, parts);
      std::int64_t expect_start = 0;
      for (int i = 0; i < parts; ++i) {
        EXPECT_EQ(p.start(i), expect_start);
        EXPECT_GE(p.size(i), 1);
        expect_start = p.end(i);
      }
      EXPECT_EQ(expect_start, g);
    }
  }
}

TEST(DimPartition, OwnerOfInvertsStart) {
  for (std::int64_t g : {1, 9, 10, 33}) {
    for (int parts : {1, 2, 3, 5, 8}) {
      if (parts > g) continue;
      DimPartition p(g, parts);
      for (std::int64_t idx = 0; idx < g; ++idx) {
        const int owner = p.owner_of(idx);
        EXPECT_GE(idx, p.start(owner));
        EXPECT_LT(idx, p.end(owner));
      }
    }
  }
}

TEST(DimPartition, OutOfRangeThrows) {
  DimPartition p(8, 2);
  EXPECT_THROW(p.start(2), Error);
  EXPECT_THROW(p.owner_of(8), Error);
  EXPECT_THROW(p.owner_of(-1), Error);
}

TEST(ProcessGrid, RankCoordRoundTrip) {
  ProcessGrid g{2, 1, 3, 4};
  EXPECT_EQ(g.size(), 24);
  for (int r = 0; r < g.size(); ++r) {
    const auto c = g.coord_of(r);
    EXPECT_EQ(g.rank_of(c), r);
  }
}

TEST(ProcessGrid, LexicographicOrderSampleMajor) {
  // Sample groups are contiguous rank ranges (rank / (h*w) = sample coord).
  ProcessGrid g{4, 1, 2, 2};
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g.coord_of(r).n, r / 4);
  }
  EXPECT_EQ(g.coord_of(5).h, 0);
  EXPECT_EQ(g.coord_of(5).w, 1);
  EXPECT_EQ(g.coord_of(6).h, 1);
}

TEST(Distribution, LocalShapesTileGlobal) {
  const Shape4 global{8, 3, 10, 12};
  const ProcessGrid grid{2, 1, 2, 3};
  const auto d = Distribution::make(global, grid);
  std::int64_t total = 0;
  for (int r = 0; r < grid.size(); ++r) total += d.local_shape(r).size();
  EXPECT_EQ(total, global.size());
  EXPECT_EQ(d.global_shape(), global);
}

TEST(Distribution, OwnedBoxesDisjointAndCovering) {
  const Shape4 global{4, 2, 7, 5};
  const ProcessGrid grid{2, 1, 3, 1};
  const auto d = Distribution::make(global, grid);
  Tensor<int> cover(global);
  for (int r = 0; r < grid.size(); ++r) {
    const Box4 b = d.owned_box(r);
    for (std::int64_t n = 0; n < b.ext[0]; ++n)
      for (std::int64_t c = 0; c < b.ext[1]; ++c)
        for (std::int64_t h = 0; h < b.ext[2]; ++h)
          for (std::int64_t w = 0; w < b.ext[3]; ++w)
            cover(b.off[0] + n, b.off[1] + c, b.off[2] + h, b.off[3] + w)++;
  }
  for (std::int64_t i = 0; i < cover.size(); ++i) EXPECT_EQ(cover.data()[i], 1);
}

TEST(IntersectBoxes, OverlapAndDisjoint) {
  Box4 a, b;
  a.off[2] = 0;
  a.ext[2] = 5;
  a.ext[0] = a.ext[1] = a.ext[3] = 1;
  b = a;
  b.off[2] = 3;
  b.ext[2] = 5;
  const Box4 i = intersect_boxes(a, b);
  EXPECT_EQ(i.off[2], 3);
  EXPECT_EQ(i.ext[2], 2);

  b.off[2] = 5;
  const Box4 empty = intersect_boxes(a, b);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace distconv
