#include <gtest/gtest.h>

#include "core/layers.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"

namespace distconv::data {
namespace {

using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;

NetworkSpec tiny_net(const Shape4& in_shape) {
  NetworkBuilder nb;
  const int in = nb.input(in_shape);
  nb.relu("r", in);
  return nb.take();
}

TEST(Loader, BothModesDeliverIdenticalShards) {
  const Shape4 in_shape{4, 2, 16, 16};
  MeshTanglingConfig config;
  config.size = 16;
  config.channels = 2;
  config.label_downsample = 4;
  const MeshTanglingDataset ds(config);
  auto batch_fn = [&](std::int64_t first, Tensor<float>& global) {
    Tensor<float> labels(Shape4{global.shape().n, 1, 4, 4});
    ds.batch(first, global, labels);
  };

  for (auto grid : {ProcessGrid{4, 1, 1, 1}, ProcessGrid{1, 1, 2, 2}}) {
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = tiny_net(in_shape);
      core::Model replicated(spec, comm, Strategy::uniform(spec.size(), grid));
      core::Model scattered(spec, comm, Strategy::uniform(spec.size(), grid));
      DistributedLoader a(replicated, 0, batch_fn, 100, LoadMode::kReplicate);
      DistributedLoader b(scattered, 0, batch_fn, 100,
                          LoadMode::kScatterFromRoot);
      a.load_step(3);
      b.load_step(3);
      const auto& ta = replicated.rt(0).y.t;
      const auto& tb = scattered.rt(0).y.t;
      const Box4 ib = ta.interior_box();
      for (std::int64_t n = 0; n < ib.ext[0]; ++n)
        for (std::int64_t c = 0; c < ib.ext[1]; ++c)
          for (std::int64_t h = 0; h < ib.ext[2]; ++h)
            for (std::int64_t w = 0; w < ib.ext[3]; ++w)
              ASSERT_EQ(ta.buffer()(n, c, ib.off[2] + h, ib.off[3] + w),
                        tb.buffer()(n, c, ib.off[2] + h, ib.off[3] + w));
    });
  }
}

TEST(Loader, StepsAdvanceThroughDataset) {
  const Shape4 in_shape{2, 1, 8, 8};
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_net(in_shape);
    core::Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2));
    std::vector<std::int64_t> firsts;
    DistributedLoader loader(
        model, 0,
        [&](std::int64_t first, Tensor<float>& global) {
          if (comm.rank() == 0) firsts.push_back(first);
          global.fill(float(first));
        },
        /*dataset_size=*/6);
    loader.load_step(0);
    loader.load_step(1);
    loader.load_step(2);
    loader.load_step(3);  // wraps: (3*2) % 6 == 0
    if (comm.rank() == 0) {
      EXPECT_EQ(firsts, (std::vector<std::int64_t>{0, 2, 4, 0}));
    }
  });
}

TEST(Loader, BatchLargerThanDatasetThrows) {
  comm::World world(1);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 const NetworkSpec spec = tiny_net(Shape4{8, 1, 4, 4});
                 core::Model model(spec, comm,
                                   Strategy::sample_parallel(spec.size(), 1));
                 DistributedLoader loader(
                     model, 0, [](std::int64_t, Tensor<float>&) {}, 4);
               }),
               Error);
}

TEST(Loader, ScatterFeedsTraining) {
  // End-to-end: scattered loading drives a training step identically to
  // replicated loading.
  const Shape4 in_shape{4, 2, 16, 16};
  auto run_mode = [&](LoadMode mode) {
    double loss = 0;
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(in_shape);
      int x = nb.conv("c", in, 4, 3, 1);
      x = nb.conv("head", x, 1, 1, 1, 0, true);
      const NetworkSpec spec = nb.take();
      core::Model model(spec, comm,
                        Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}),
                        21);
      DistributedLoader loader(
          model, 0,
          [](std::int64_t first, Tensor<float>& global) {
            Rng rng(40 + first);
            global.fill_uniform(rng);
          },
          64, mode);
      loader.load_step(5);
      model.forward();
      Tensor<float> targets(model.rt(model.output_layer()).out_shape);
      const double l = model.loss_bce(targets);
      if (comm.rank() == 0) loss = l;
    });
    return loss;
  };
  EXPECT_DOUBLE_EQ(run_mode(LoadMode::kReplicate),
                   run_mode(LoadMode::kScatterFromRoot));
}

}  // namespace
}  // namespace distconv::data
