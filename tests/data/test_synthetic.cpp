#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace distconv::data {
namespace {

TEST(MeshTangling, Deterministic) {
  MeshTanglingConfig config;
  config.size = 32;
  config.channels = 4;
  config.label_downsample = 8;
  MeshTanglingDataset a(config), b(config);
  Tensor<float> sa(a.sample_shape()), sb(b.sample_shape());
  a.sample(5, sa);
  b.sample(5, sb);
  for (std::int64_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa.data()[i], sb.data()[i]);
  }
}

TEST(MeshTangling, SamplesDifferByIndex) {
  MeshTanglingConfig config;
  config.size = 16;
  config.channels = 2;
  config.label_downsample = 4;
  MeshTanglingDataset ds(config);
  Tensor<float> s0(ds.sample_shape()), s1(ds.sample_shape());
  ds.sample(0, s0);
  ds.sample(1, s1);
  double diff = 0;
  for (std::int64_t i = 0; i < s0.size(); ++i) {
    diff += std::abs(s0.data()[i] - s1.data()[i]);
  }
  EXPECT_GT(diff / s0.size(), 0.05);
}

TEST(MeshTangling, FieldsAreSmooth) {
  // Adjacent pixels of a low-frequency field differ slowly.
  MeshTanglingConfig config;
  config.size = 64;
  config.channels = 1;
  MeshTanglingDataset ds(config);
  Tensor<float> s(ds.sample_shape());
  ds.sample(3, s);
  double max_step = 0;
  for (std::int64_t h = 0; h + 1 < 64; ++h) {
    for (std::int64_t w = 0; w < 64; ++w) {
      max_step = std::max(max_step,
                          double(std::abs(s(0, 0, h + 1, w) - s(0, 0, h, w))));
    }
  }
  EXPECT_LT(max_step, 1.0);
}

TEST(MeshTangling, LabelsAreBinaryAndNonDegenerate) {
  MeshTanglingConfig config;
  config.size = 64;
  config.channels = 2;
  config.label_downsample = 4;
  MeshTanglingDataset ds(config);
  Tensor<float> lab(ds.label_shape());
  double fraction_sum = 0;
  for (int i = 0; i < 8; ++i) {
    ds.label(i, lab);
    for (std::int64_t j = 0; j < lab.size(); ++j) {
      ASSERT_TRUE(lab.data()[j] == 0.0f || lab.data()[j] == 1.0f);
    }
    fraction_sum += ds.tangled_fraction(i);
  }
  const double mean_fraction = fraction_sum / 8;
  EXPECT_GT(mean_fraction, 0.02) << "labels almost never fire";
  EXPECT_LT(mean_fraction, 0.98) << "labels almost always fire";
}

TEST(MeshTangling, BatchMatchesIndividualSamples) {
  MeshTanglingConfig config;
  config.size = 16;
  config.channels = 3;
  config.label_downsample = 4;
  MeshTanglingDataset ds(config);
  Tensor<float> states(Shape4{3, 3, 16, 16});
  Tensor<float> labels(Shape4{3, 1, 4, 4});
  ds.batch(10, states, labels);
  Tensor<float> single(ds.sample_shape());
  ds.sample(11, single);
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t h = 0; h < 16; ++h) {
      for (std::int64_t w = 0; w < 16; ++w) {
        ASSERT_EQ(states(1, c, h, w), single(0, c, h, w));
      }
    }
  }
}

TEST(MeshTangling, InvalidDownsampleThrows) {
  MeshTanglingConfig config;
  config.size = 30;
  config.label_downsample = 4;
  EXPECT_THROW(MeshTanglingDataset ds(config), Error);
}

TEST(Classification, LabelsRoundRobin) {
  ClassificationConfig config;
  config.classes = 4;
  ClassificationDataset ds(config);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(5), 1);
  EXPECT_EQ(ds.label(7), 3);
}

TEST(Classification, SamplesClusterByClass) {
  // Two samples of the same class are closer than samples of different
  // classes (the separability a CNN exploits).
  ClassificationConfig config;
  config.size = 16;
  config.channels = 2;
  config.classes = 3;
  config.noise = 0.1f;
  ClassificationDataset ds(config);
  Tensor<float> a(ds.sample_shape()), b(ds.sample_shape()), c(ds.sample_shape());
  ds.sample(0, a);   // class 0
  ds.sample(3, b);   // class 0
  ds.sample(1, c);   // class 1
  auto dist = [](const Tensor<float>& x, const Tensor<float>& y) {
    double d = 0;
    for (std::int64_t i = 0; i < x.size(); ++i) {
      const double delta = x.data()[i] - y.data()[i];
      d += delta * delta;
    }
    return d;
  };
  EXPECT_LT(dist(a, b), dist(a, c));
}

TEST(Classification, BatchLabelsAligned) {
  ClassificationConfig config;
  config.size = 8;
  config.classes = 5;
  ClassificationDataset ds(config);
  Tensor<float> images(Shape4{6, 3, 8, 8});
  std::vector<int> labels;
  ds.batch(2, images, labels);
  ASSERT_EQ(labels.size(), 6u);
  for (int k = 0; k < 6; ++k) EXPECT_EQ(labels[k], (2 + k) % 5);
}

}  // namespace
}  // namespace distconv::data
