#include <gtest/gtest.h>

#include "core/layers.hpp"
#include "models/models.hpp"

namespace distconv::models {
namespace {

TEST(ResNet50, LayerGeometryMatchesPaperMicrobenchmarks) {
  // Fig. 2 anchors: conv1 (C=3 H=224 W=224 F=64 K=7 P=3 S=2) and
  // res3b_branch2a (C=512 H=28 W=28 F=128 K=1 P=0 S=1).
  const auto spec = make_resnet50(32);
  const auto shapes = spec.infer_shapes();

  const int conv1 = layer_index(spec, "conv1");
  const auto* c1 = dynamic_cast<const core::Conv2dLayer*>(&spec.layer(conv1));
  ASSERT_NE(c1, nullptr);
  const auto p1 = c1->conv_params();
  EXPECT_EQ(p1.kh, 7);
  EXPECT_EQ(p1.sh, 2);
  EXPECT_EQ(p1.ph, 3);
  EXPECT_EQ(shapes[spec.layer(conv1).parents()[0]],
            (Shape4{32, 3, 224, 224}));
  EXPECT_EQ(shapes[conv1], (Shape4{32, 64, 112, 112}));

  const int r3b = layer_index(spec, "res3b_branch2a");
  const auto* c3 = dynamic_cast<const core::Conv2dLayer*>(&spec.layer(r3b));
  ASSERT_NE(c3, nullptr);
  EXPECT_EQ(c3->conv_params().kh, 1);
  EXPECT_EQ(c3->filters(), 128);
  const Shape4 in3 = shapes[spec.layer(r3b).parents()[0]];
  EXPECT_EQ(in3.c, 512);
  EXPECT_EQ(in3.h, 28);
  EXPECT_EQ(in3.w, 28);
}

TEST(ResNet50, StageStructure) {
  const auto spec = make_resnet50(8);
  const auto shapes = spec.infer_shapes();
  // Final pre-pool features: 2048 channels at 7x7.
  const int gap = layer_index(spec, "gap");
  const Shape4 pre = shapes[spec.layer(gap).parents()[0]];
  EXPECT_EQ(pre.c, 2048);
  EXPECT_EQ(pre.h, 7);
  // Classifier output: 1000-way.
  EXPECT_EQ(shapes.back(), (Shape4{8, 1000, 1, 1}));
}

TEST(ResNet50, ParameterCountNearTwentyFiveMillion) {
  const auto spec = make_resnet50(1);
  std::int64_t params = 0;
  const auto shapes = spec.infer_shapes();
  for (int i = 0; i < spec.size(); ++i) {
    if (const auto* conv = dynamic_cast<const core::Conv2dLayer*>(&spec.layer(i))) {
      const Shape4 in = shapes[conv->parents()[0]];
      const auto p = conv->conv_params();
      params += std::int64_t(conv->filters()) * in.c * p.kh * p.kw;
    }
  }
  // ~25.6M including the 2048→1000 classifier; BN params excluded here.
  EXPECT_GT(params, 23'000'000);
  EXPECT_LT(params, 28'000'000);
}

TEST(ResNet50, HasResidualBranches) {
  const auto spec = make_resnet50(1);
  int adds = 0;
  for (int i = 0; i < spec.size(); ++i) {
    if (dynamic_cast<const core::AddLayer*>(&spec.layer(i)) != nullptr) ++adds;
  }
  EXPECT_EQ(adds, 3 + 4 + 6 + 3);  // one residual join per bottleneck block
}

TEST(MeshModel, Conv1GeometryMatchesFig3) {
  // conv1_1: C=18 H=2048 W=2048 F=128 K=5 P=2 S=2.
  const auto spec = make_mesh_model_2k(1);
  const auto shapes = spec.infer_shapes();
  const int c11 = layer_index(spec, "conv1_1");
  const auto* conv = dynamic_cast<const core::Conv2dLayer*>(&spec.layer(c11));
  ASSERT_NE(conv, nullptr);
  const auto p = conv->conv_params();
  EXPECT_EQ(p.kh, 5);
  EXPECT_EQ(p.ph, 2);
  EXPECT_EQ(p.sh, 2);
  EXPECT_EQ(conv->filters(), 128);
  EXPECT_EQ(shapes[spec.layer(c11).parents()[0]], (Shape4{1, 18, 2048, 2048}));
  EXPECT_EQ(shapes[c11], (Shape4{1, 128, 1024, 1024}));
}

TEST(MeshModel, Conv6GeometryMatchesFig3) {
  // conv6_1: C=384 H=64 W=64 F=128 K=3 P=1 S=2.
  const auto spec = make_mesh_model_2k(1);
  const auto shapes = spec.infer_shapes();
  const int c61 = layer_index(spec, "conv6_1");
  const auto* conv = dynamic_cast<const core::Conv2dLayer*>(&spec.layer(c61));
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->conv_params().kh, 3);
  EXPECT_EQ(conv->conv_params().sh, 2);
  EXPECT_EQ(conv->filters(), 128);
  const Shape4 in = shapes[spec.layer(c61).parents()[0]];
  EXPECT_EQ(in.c, 384);
  EXPECT_EQ(in.h, 64);
}

TEST(MeshModel, BlockCountsFollowPaper) {
  // "six blocks of either three (1K) or five (2K) convolution-batch
  // normalization-ReLU operations ... and a final convolutional layer".
  auto count_convs = [](const core::NetworkSpec& spec) {
    int n = 0;
    for (int i = 0; i < spec.size(); ++i) {
      if (dynamic_cast<const core::Conv2dLayer*>(&spec.layer(i)) != nullptr) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_convs(make_mesh_model_1k(1)), 6 * 3 + 1);
  EXPECT_EQ(count_convs(make_mesh_model_2k(1)), 6 * 5 + 1);
}

TEST(MeshModel, SegmentationOutputIsPerPixel) {
  const auto spec = make_mesh_model_1k(4);
  const auto shapes = spec.infer_shapes();
  EXPECT_EQ(shapes.back(), (Shape4{4, 1, 16, 16}));  // 1024 / 2^6
}

TEST(MeshModel, EighteenChannelInput) {
  const auto spec = make_mesh_model_1k(2);
  EXPECT_EQ(spec.infer_shapes()[0], (Shape4{2, 18, 1024, 1024}));
}

TEST(TinyVariants, AreTrainableShapes) {
  // The scaled-down models must infer valid shapes end to end.
  EXPECT_NO_THROW(make_resnet_tiny(4).infer_shapes());
  EXPECT_NO_THROW(make_mesh_model_test(2).infer_shapes());
}

TEST(LayerIndex, ThrowsForUnknownName) {
  const auto spec = make_mesh_model_test(1);
  EXPECT_THROW(layer_index(spec, "not_a_layer"), Error);
}

}  // namespace
}  // namespace distconv::models
