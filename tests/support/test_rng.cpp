#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hpp"

namespace distconv {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 3), b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SeedsDiffer) {
  Rng a(1, 0), b(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(123);
  const int n = 20000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, NextBelowStaysBelow) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace distconv
