// RAII override of the intra-rank thread budget for determinism tests:
// restores automatic sizing even if the body under test throws, so a
// leaked override can't silently change what later tests exercise.
#pragma once

#include "support/parallel.hpp"

namespace distconv::parallel {

struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
};

}  // namespace distconv::parallel
