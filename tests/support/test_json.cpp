// The minimal JSON DOM parser backing the observability dump validation:
// strict parsing, insertion-ordered objects, escapes, and the error paths
// (trailing garbage, bad escapes, over-deep nesting) all throw Error.
#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"
#include "support/json.hpp"

namespace distconv::support::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").boolean);
  EXPECT_FALSE(parse("false").boolean);
  EXPECT_EQ(parse("42").number, 42.0);
  EXPECT_EQ(parse("-3.5").number, -3.5);
  EXPECT_EQ(parse("1.25e2").number, 125.0);
  EXPECT_EQ(parse("\"hi\"").string, "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(v.is_object());
  const Value& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_EQ(a.array[1].number, 2.0);
  EXPECT_EQ(a.array[2].at("b").string, "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, ObjectsKeepInsertionOrderAndFindReturnsFirstDuplicate) {
  const Value v = parse(R"({"z": 1, "a": 2, "z": 3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  const Value* z = v.find("z");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->number, 1.0);  // the first of the duplicates
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), Error);
}

TEST(Json, DecodesEscapesIncludingUnicode) {
  const Value v = parse(R"("line\nquote\"slash\\tab\t u: A")");
  EXPECT_EQ(v.string, "line\nquote\"slash\\tab\t u: A");
  // \uXXXX code points come out as UTF-8 (1-, 2- and 3-byte forms).
  EXPECT_EQ(parse(R"("\u0041")").string, "A");
  EXPECT_EQ(parse(R"("\u00e9")").string, "\xc3\xa9");
  EXPECT_EQ(parse(R"("\u20ac")").string, "\xe2\x82\xac");
  EXPECT_THROW(parse(R"("\u12g4")"), Error);
}

TEST(Json, AcceptsWhitespaceAndEmptyContainers) {
  const Value v = parse("  { \"a\" : [ ] , \"b\" : { } }  ");
  EXPECT_TRUE(v.at("a").is_array());
  EXPECT_TRUE(v.at("a").array.empty());
  EXPECT_TRUE(v.at("b").is_object());
  EXPECT_TRUE(v.at("b").object.empty());
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1, 2,]"), Error);
  EXPECT_THROW(parse("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("\"bad \\q escape\""), Error);
  EXPECT_THROW(parse("nul"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
}

TEST(Json, RejectsOverDeepNesting) {
  std::string deep;
  for (int i = 0; i < 4096; ++i) deep += "[";
  for (int i = 0; i < 4096; ++i) deep += "]";
  EXPECT_THROW(parse(deep), Error);
}

TEST(Json, AtThrowsOnNonObjects) {
  EXPECT_THROW(parse("[1]").at("a"), Error);
  EXPECT_EQ(parse("[1]").find("a"), nullptr);
}

}  // namespace
}  // namespace distconv::support::json
