// Unit tests for the intra-rank parallel runtime: coverage, chunking,
// nesting, exception propagation, and composition with World's rank
// threads (also the ThreadSanitizer target for the pool).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"
#include "support/parallel.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::parallel {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(8);
  const std::int64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NonZeroBeginAndEmptyRange) {
  ThreadGuard guard(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, 200, 1, [&](std::int64_t b, std::int64_t e) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
  bool ran = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ran = true; });
  parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, RespectsGrainAndBudget) {
  ThreadGuard guard(4);
  std::atomic<int> chunks{0};
  parallel_for(0, 1000, 1, [&](std::int64_t, std::int64_t) { chunks.fetch_add(1); });
  EXPECT_LE(chunks.load(), 4);  // at most num_threads() chunks
  chunks = 0;
  parallel_for(0, 100, 64, [&](std::int64_t b, std::int64_t e) {
    EXPECT_TRUE(e - b >= 64 || e == 100);
    chunks.fetch_add(1);
  });
  EXPECT_LE(chunks.load(), 2);  // grain 64 over 100 iterations
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline) {
  ThreadGuard guard(8);
  int calls = 0;  // non-atomic on purpose: must run on this thread only
  std::thread::id caller = std::this_thread::get_id();
  parallel_for(0, 10, 100, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsComplete) {
  ThreadGuard guard(4);
  const std::int64_t n = 64, m = 128;
  std::vector<std::atomic<int>> hits(n * m);
  parallel_for(0, n, 1, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t i = ob; i < oe; ++i) {
      parallel_for(0, m, 1, [&, i](std::int64_t b, std::int64_t e) {
        for (std::int64_t j = b; j < e; ++j) hits[i * m + j].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesException) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::int64_t b, std::int64_t) {
                     if (b >= 0) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> ok{0};
  parallel_for(0, 16, 1, [&](std::int64_t b, std::int64_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ParallelFor, NumThreadsPriority) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  set_rank_threads(1 << 20);  // absurd rank count still yields >= 1
  EXPECT_GE(num_threads(), 1);
  set_rank_threads(1);
}

TEST(ParallelFor, ComposesWithWorldRankThreads) {
  // Every rank thread drives the shared pool concurrently while also
  // exchanging messages — the interaction TSan guards.
  ThreadGuard guard(4);
  const int P = 4;
  comm::World world(P);
  for (int iter = 0; iter < 3; ++iter) {
    world.run([&](comm::Comm& comm) {
      const std::int64_t n = 4096;
      std::vector<double> vals(n);
      parallel_for(0, n, 64, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) vals[i] = double(i % 97) + comm.rank();
      });
      double local = std::accumulate(vals.begin(), vals.end(), 0.0);
      comm::allreduce(comm, &local, 1, comm::ReduceOp::kSum);
      double expect = 0.0;
      for (std::int64_t i = 0; i < n; ++i) expect += double(i % 97);
      expect = expect * P + n * (0 + 1 + 2 + 3);
      EXPECT_DOUBLE_EQ(local, expect);
    });
  }
}

TEST(ParallelFor, ChunkBoundariesDeterministicPerBudget) {
  // Same budget => same decomposition (static chunking), run to run.
  ThreadGuard guard(8);
  auto collect = [&] {
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    std::mutex m;
    parallel_for(0, 1000, 7, [&](std::int64_t b, std::int64_t e) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto a = collect();
  const auto b = collect();
  EXPECT_EQ(a, b);
}

TEST(ParallelFor2d, VisitsEveryPairExactlyOnce) {
  ThreadGuard guard(4);
  const std::int64_t n0 = 13, n1 = 7;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n0 * n1));
  for (auto& h : hits) h.store(0);
  parallel_for_2d(n0, n1, 1, [&](std::int64_t i, std::int64_t j) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, n0);
    ASSERT_GE(j, 0);
    ASSERT_LT(j, n1);
    hits[static_cast<std::size_t>(i * n1 + j)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2d, EmptyDimensionsRunNothing) {
  int calls = 0;
  parallel_for_2d(0, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for_2d(5, 0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel_for_2d(-1, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor2d, PlaneSumsIndependentOfBudget) {
  // The flattened-plane idiom's determinism contract: per-(i, j) results are
  // identical for any thread budget when each pair owns its output.
  const std::int64_t n0 = 6, n1 = 9;
  auto run = [&](int threads) {
    ThreadGuard guard(threads);
    std::vector<double> out(static_cast<std::size_t>(n0 * n1), 0.0);
    parallel_for_2d(n0, n1, 2, [&](std::int64_t i, std::int64_t j) {
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += 1e-3 * double(k) * (i + 2 * j + 1);
      out[static_cast<std::size_t>(i * n1 + j)] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  for (int threads : {2, 3, 8}) {
    const auto parallel_result = run(threads);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel_result[i]) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace distconv::parallel
