#include <gtest/gtest.h>

#include "support/error.hpp"

namespace distconv {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    DC_REQUIRE(1 == 2, "context ", 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(DC_REQUIRE(true, "unused"));
}

TEST(Error, CheckThrows) { EXPECT_THROW(DC_CHECK(false), Error); }

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(DC_FAIL("boom ", 1, " ", 2.5), Error);
}

}  // namespace
}  // namespace distconv
