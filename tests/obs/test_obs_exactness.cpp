// Observability must be a pure observer: enabling metrics + tracing may not
// change a single bit of the training computation. One forward + BCE loss +
// backward + SGD step runs twice — obs off, then obs on — under sample,
// spatial and channel parallelism crossed with every progress-engine mode,
// and outputs, losses and post-update parameters must match bitwise.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "comm/progress.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace distconv::core {
namespace {

struct RunResult {
  Tensor<float> output;
  double loss = 0.0;
  std::vector<Tensor<float>> params;
};

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

NetworkSpec small_conv_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.relu("r2", x);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

RunResult run_once(int ranks,
                   const std::function<Strategy(int, int)>& make_strategy,
                   comm::ProgressMode progress, bool obs_on) {
  // The collection switches are process-global; flip them around the run and
  // always restore the off state so the reference runs stay uninstrumented.
  obs::metrics::set_enabled(obs_on);
  obs::trace::set_enabled(obs_on);
  RunResult result;
  comm::World world(ranks);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    ModelOptions opts;
    opts.comm_progress = progress;  // env cache bypass: set programmatically
    Model model(spec, comm, make_strategy(spec.size(), ranks), /*seed=*/7,
                opts);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    model.set_input(0, make_input(in_shape, 99));
    model.forward();
    const double loss = model.loss_bce(make_targets(out_shape, 55));
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 1e-4f});
    Tensor<float> out = model.gather_output(model.output_layer());
    if (comm.rank() == 0) {
      result.output = std::move(out);
      result.loss = loss;
      for (int i = 0; i < model.num_layers(); ++i) {
        for (const auto& p : model.rt(i).params) result.params.push_back(p);
      }
    }
  });
  obs::metrics::set_enabled(false);
  obs::trace::set_enabled(false);
  obs::metrics::reset();
  obs::trace::reset();
  return result;
}

void expect_bitwise(const RunResult& got, const RunResult& ref) {
  EXPECT_EQ(got.loss, ref.loss);
  ASSERT_EQ(got.output.shape(), ref.output.shape());
  for (std::int64_t i = 0; i < got.output.size(); ++i) {
    ASSERT_EQ(got.output.data()[i], ref.output.data()[i])
        << "output diverges at flat index " << i;
  }
  ASSERT_EQ(got.params.size(), ref.params.size());
  for (std::size_t p = 0; p < got.params.size(); ++p) {
    ASSERT_EQ(got.params[p].size(), ref.params[p].size());
    for (std::int64_t i = 0; i < got.params[p].size(); ++i) {
      ASSERT_EQ(got.params[p].data()[i], ref.params[p].data()[i])
          << "param " << p << " diverges at flat index " << i;
    }
  }
}

TEST(ObsExactness, InstrumentationIsBitwiseInvisibleAcrossStrategiesAndModes) {
  struct StrategyCase {
    const char* name;
    std::function<Strategy(int, int)> make;
  };
  const std::vector<StrategyCase> strategies = {
      {"sample4", [](int l, int p) { return Strategy::sample_parallel(l, p); }},
      {"spatial_2x2",
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 1, 2, 2}); }},
      {"channel4",
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 4, 1, 1}); }},
  };
  const comm::ProgressMode modes[] = {comm::ProgressMode::kOff,
                                      comm::ProgressMode::kThread,
                                      comm::ProgressMode::kHooks};
  for (const auto& sc : strategies) {
    for (const comm::ProgressMode mode : modes) {
      SCOPED_TRACE(std::string(sc.name) + " progress=" +
                   comm::to_string(mode));
      const RunResult ref = run_once(4, sc.make, mode, /*obs_on=*/false);
      const RunResult got = run_once(4, sc.make, mode, /*obs_on=*/true);
      expect_bitwise(got, ref);
    }
  }
}

}  // namespace
}  // namespace distconv::core
