// Trace layer: ring-buffered per-thread events, wraparound that drops whole
// spans (never breaks JSON or nesting), per-rank dump files in Chrome Trace
// Event Format, and span nesting in the emitted timestamps.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace distconv::obs::trace {
namespace {

struct TraceFixture : ::testing::Test {
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    set_capacity(16384);  // restore the default for later tests
  }
};

using ObsTrace = TraceFixture;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse a dump file and return its event array (handles both the bare-array
/// and the {"traceEvents": [...]} framings).
support::json::Value load_events(const std::string& path) {
  const support::json::Value root = support::json::parse(slurp(path));
  if (root.is_array()) return root;
  const support::json::Value* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr) << path;
  return *events;
}

TEST_F(ObsTrace, RingWraparoundKeepsValidJsonWithBoundedEvents) {
  constexpr std::size_t kCapacity = 8;
  set_capacity(kCapacity);
  // Rings adopt the capacity at creation, so emit from a fresh thread.
  std::thread emitter([] {
    for (int i = 0; i < 100; ++i) {
      Span span("wrap-span", "test");
      span.arg("i", static_cast<double>(i));
    }
  });
  emitter.join();

  const std::string dir = ::testing::TempDir() + "/obs-trace-wrap";
  dump(dir);
  const support::json::Value events = load_events(dir + "/trace-process.json");
  ASSERT_TRUE(events.is_array());
  std::size_t complete = 0;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev.is_object());
    if (ev.at("ph").string == "X") ++complete;
  }
  EXPECT_GT(complete, 0u);
  EXPECT_LE(complete, kCapacity);
}

TEST_F(ObsTrace, SpansNestProperlyInTheDumpedTimestamps) {
  std::thread emitter([] {
    log::set_thread_rank(0);
    {
      Span outer("outer", "test");
      {
        Span inner("inner", "test");
        inner.arg("depth", 1.0);
      }
      emit_instant("marker", "test");
    }
    log::set_thread_rank(-1);
  });
  emitter.join();

  const std::string dir = ::testing::TempDir() + "/obs-trace-nest";
  dump(dir);
  const support::json::Value events = load_events(dir + "/trace-rank0.json");
  ASSERT_TRUE(events.is_array());

  double outer_ts = -1, outer_end = -1, inner_ts = -1, inner_end = -1;
  bool saw_marker = false;
  for (const auto& ev : events.array) {
    const std::string name = ev.at("name").string;
    if (ev.at("ph").string == "X") {
      const double ts = ev.at("ts").number;
      const double end = ts + ev.at("dur").number;
      if (name == "outer") {
        outer_ts = ts;
        outer_end = end;
      } else if (name == "inner") {
        inner_ts = ts;
        inner_end = end;
      }
    } else if (ev.at("ph").string == "i" && name == "marker") {
      saw_marker = true;
    }
  }
  ASSERT_GE(outer_ts, 0.0);
  ASSERT_GE(inner_ts, 0.0);
  EXPECT_TRUE(saw_marker);
  // Inner must sit inside outer (µs serialization granularity epsilon).
  constexpr double kEpsUs = 0.002;
  EXPECT_GE(inner_ts + kEpsUs, outer_ts);
  EXPECT_LE(inner_end, outer_end + kEpsUs);
}

TEST_F(ObsTrace, EventsCarryArgsAndThreadIdentity) {
  std::thread emitter([] {
    log::set_thread_rank(1);
    const Arg args[] = {{"bytes", 4096.0}, {"rounds", 3.0}};
    emit_complete("tagged", "test", now_ns(), 1000, args, 2);
    log::set_thread_rank(-1);
  });
  emitter.join();

  const std::string dir = ::testing::TempDir() + "/obs-trace-args";
  dump(dir);
  const support::json::Value events = load_events(dir + "/trace-rank1.json");
  bool found = false;
  for (const auto& ev : events.array) {
    if (ev.at("ph").string != "X" || ev.at("name").string != "tagged") continue;
    found = true;
    EXPECT_NE(ev.find("pid"), nullptr);
    EXPECT_NE(ev.find("tid"), nullptr);
    const support::json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->at("bytes").number, 4096.0);
    EXPECT_EQ(args->at("rounds").number, 3.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTrace, DisabledTracingEmitsNothing) {
  set_enabled(false);
  std::thread emitter([] {
    Span span("ghost", "test");
    emit_instant("ghost-instant", "test");
  });
  emitter.join();
  set_enabled(true);

  const std::string dir = ::testing::TempDir() + "/obs-trace-off";
  dump(dir);
  // Either no process file at all, or one without our events.
  std::ifstream in(dir + "/trace-process.json", std::ios::binary);
  if (!in.good()) return;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str().find("ghost"), std::string::npos);
}

TEST_F(ObsTrace, ResetDropsBufferedEvents) {
  std::thread emitter([] { emit_instant("pre-reset", "test"); });
  emitter.join();
  reset();
  const std::string dir = ::testing::TempDir() + "/obs-trace-reset";
  dump(dir);
  std::ifstream in(dir + "/trace-process.json", std::ios::binary);
  if (!in.good()) return;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str().find("pre-reset"), std::string::npos);
}

}  // namespace
}  // namespace distconv::obs::trace
