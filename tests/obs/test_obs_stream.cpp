// Streaming telemetry export: the background flusher must rotate valid,
// independently parseable trace segments (so a killed process still leaves
// everything flushed before the kill on disk), ring wraparound must be
// counted in obs.trace.dropped, and — the observability prime directive —
// streaming instrumentation may not change a single bit of the training
// computation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/faults.hpp"
#include "comm/progress.hpp"
#include "comm/world.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace distconv::obs {
namespace {

namespace fs = std::filesystem;
using support::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Every test flips process-global collection switches; restore the
/// uninstrumented default state no matter how the test exits.
struct ObsCleanup {
  ~ObsCleanup() {
    stream::stop();
    stream::configure(stream::Options{});  // period 0: streaming off
    trace::set_enabled(false);
    metrics::set_enabled(false);
    trace::set_capacity(16384);
    trace::reset();
    metrics::reset();
  }
};

/// Parse one segment file and return its traceEvents array size (the 'M'
/// process_name metadata record is always present, so >= 1).
std::size_t parse_segment(const std::string& path) {
  const Value root = support::json::parse(read_file(path));
  const Value& events = root.at("traceEvents");
  EXPECT_TRUE(events.is_array()) << path;
  EXPECT_GE(events.array.size(), 1u) << path;
  EXPECT_EQ(events.array[0].at("ph").string, "M") << path;
  return events.array.size();
}

std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("trace-seg", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      out.push_back(entry.path().string());
    }
  }
  return out;
}

TEST(ObsStream, FlushRotatesSegmentsAndDrainsTheRings) {
  ObsCleanup cleanup;
  const std::string dir = "/tmp/distconv_obs_stream_flush";
  fs::remove_all(dir);
  trace::set_enabled(true);
  metrics::set_enabled(true);
  trace::reset();
  metrics::reset();

  stream::Options opts;
  opts.period_ms = 1000;  // enabled, but we drive flushes synchronously
  opts.trace_dir = dir;
  opts.metrics_path = dir + "/metrics.json";
  stream::configure(opts);

  {
    trace::Span s("stream test span", "test");
    s.arg("x", 1.0);
  }
  trace::emit_instant("stream test instant", "test");
  metrics::inc_named("stream.test.counter");

  // First flush: both events land in segment 00000 and the rings drain.
  EXPECT_EQ(stream::flush_now(), 2u);
  auto files = segment_files(dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("trace-seg00000-"), std::string::npos);
  EXPECT_EQ(parse_segment(files[0]), 3u);  // metadata + span + instant

  // Nothing new recorded => nothing drained, no new segment.
  EXPECT_EQ(stream::flush_now(), 0u);
  EXPECT_EQ(segment_files(dir).size(), 1u);

  // New events rotate into the next sequence number, not the old file.
  trace::emit_instant("stream second instant", "test");
  EXPECT_EQ(stream::flush_now(), 1u);
  files = segment_files(dir);
  ASSERT_EQ(files.size(), 2u);
  bool saw_second = false;
  for (const std::string& f : files) {
    parse_segment(f);
    saw_second = saw_second || f.find("trace-seg00001-") != std::string::npos;
  }
  EXPECT_TRUE(saw_second);

  // The periodic metrics snapshot is valid JSON and carries our counter.
  const Value metrics_root =
      support::json::parse(read_file(dir + "/metrics.json"));
  const Value& process = metrics_root.at("process").at("-1");
  EXPECT_EQ(process.at("counters").at("stream.test.counter").number, 1.0);
  fs::remove_all(dir);
}

TEST(ObsStream, KeepSegmentsPrunesOldFlushes) {
  ObsCleanup cleanup;
  const std::string dir = "/tmp/distconv_obs_stream_prune";
  fs::remove_all(dir);
  trace::set_enabled(true);
  trace::reset();
  metrics::reset();

  stream::Options opts;
  opts.period_ms = 1000;
  opts.trace_dir = dir;
  opts.keep_segments = 2;
  stream::configure(opts);

  for (int i = 0; i < 5; ++i) {
    trace::emit_instant("prune instant", "test");
    ASSERT_EQ(stream::flush_now(), 1u) << "flush " << i;
  }
  // 5 flushes, keep 2: only the two newest segment files survive.
  const auto files = segment_files(dir);
  ASSERT_EQ(files.size(), 2u);
  for (const std::string& f : files) {
    // Sequence numbers 00000-00002 were pruned; the survivors are newest.
    EXPECT_TRUE(f.find("trace-seg00003-") != std::string::npos ||
                f.find("trace-seg00004-") != std::string::npos)
        << f;
    parse_segment(f);
  }
  fs::remove_all(dir);
}

core::NetworkSpec stream_net() {
  core::NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 4, 12, 12});
  int x = nb.conv("c1", in, 8, 3, 1);
  x = nb.relu("r1", x);
  nb.conv("head", x, 2, 3, 1);
  return nb.take();
}

Tensor<float> input_for_step(std::int64_t step) {
  Tensor<float> t(Shape4{4, 4, 12, 12});
  Rng rng(100 + static_cast<std::uint64_t>(step));
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> targets_for_step(std::int64_t step,
                                     const Shape4& shape) {
  Tensor<float> t(shape);
  Rng rng(900 + static_cast<std::uint64_t>(step));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

TEST(ObsStream, KilledMultiRankRunLeavesParseableSegments) {
  ObsCleanup cleanup;
  const std::string dir = "/tmp/distconv_obs_stream_kill";
  fs::remove_all(dir);
  trace::set_enabled(true);
  metrics::set_enabled(true);
  trace::reset();
  metrics::reset();

  stream::Options opts;
  opts.period_ms = 2;  // many flushes inside a ~100 ms training run
  opts.trace_dir = dir;
  opts.metrics_path = dir + "/metrics.json";
  stream::configure(opts);

  // Seeded mid-run kill (same generator the CI fault sweep uses): max_step
  // below the step count guarantees the kill fires during training.
  comm::faults::install_fault_plan(
      comm::faults::FaultPlan::random_kill(/*seed=*/11, /*world_size=*/4,
                                           /*max_step=*/4));
  comm::World world(4);
  EXPECT_THROW(
      world.run([&](comm::Comm& comm) {
        const core::NetworkSpec spec = stream_net();
        core::Model model(spec, comm,
                          core::Strategy::sample_parallel(spec.size(), 4),
                          /*seed=*/17);
        core::Trainer trainer(model,
                              core::TrainerOptions{{0.05f, 0.9f, 0.0f}, 1});
        const Shape4 target_shape =
            model.rt(model.output_layer()).out_shape;
        for (std::int64_t s = 0; s < 6; ++s) {
          trainer.step_bce(input_for_step(s), targets_for_step(s, target_shape));
        }
      }),
      RankFailedError);
  comm::faults::clear_fault_plan();
  stream::stop();

  // Everything the dying run streamed out must be independently valid:
  // every segment parses, and the run produced real events (the final
  // World::run flush closes out whatever the kill left in the rings).
  const auto files = segment_files(dir);
  ASSERT_GE(files.size(), 1u);
  std::size_t total_events = 0;
  for (const std::string& f : files) total_events += parse_segment(f);
  EXPECT_GT(total_events, files.size());  // more than just metadata records
  const Value metrics_root =
      support::json::parse(read_file(dir + "/metrics.json"));
  EXPECT_TRUE(metrics_root.find("ranks") != nullptr);
  fs::remove_all(dir);
}

TEST(ObsStream, RingWraparoundIsCountedAsDropped) {
  ObsCleanup cleanup;
  trace::set_enabled(true);
  metrics::set_enabled(true);
  trace::reset();
  metrics::reset();

  // set_capacity only affects rings created afterwards: emit from a fresh
  // thread so its ring really is tiny.
  trace::set_capacity(8);
  std::thread emitter([] {
    for (int i = 0; i < 50; ++i) trace::emit_instant("wrap instant", "test");
  });
  emitter.join();

  EXPECT_EQ(trace::dropped_total(), 42u);  // 50 pushed - 8 retained
  EXPECT_EQ(metrics::snapshot().counter_total("obs.trace.dropped"), 42u);

  // reset() zeroes the drop accounting along with the rings.
  trace::reset();
  EXPECT_EQ(trace::dropped_total(), 0u);
}

// --- bitwise invisibility under streaming -------------------------------

struct RunResult {
  Tensor<float> output;
  double loss = 0.0;
  std::vector<Tensor<float>> params;
};

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape,
                                 std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

core::NetworkSpec small_conv_net() {
  core::NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, core::BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.relu("r2", x);
  nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

/// One forward/backward/SGD step; with `streaming` the full online pipeline
/// runs underneath it (trace + metrics on, 1 ms flusher draining the rings
/// mid-step into rotated segments).
RunResult run_once(int ranks,
                   const std::function<core::Strategy(int, int)>& make_strategy,
                   comm::ProgressMode progress, bool streaming,
                   const std::string& dir) {
  if (streaming) {
    metrics::set_enabled(true);
    trace::set_enabled(true);
    stream::Options opts;
    opts.period_ms = 1;
    opts.trace_dir = dir;
    opts.metrics_path = dir + "/metrics.json";
    opts.keep_segments = 4;  // exercise pruning under load too
    stream::configure(opts);
  }
  RunResult result;
  comm::World world(ranks);  // init_from_env starts the configured flusher
  world.run([&](comm::Comm& comm) {
    const core::NetworkSpec spec = small_conv_net();
    core::ModelOptions opts;
    opts.comm_progress = progress;
    core::Model model(spec, comm, make_strategy(spec.size(), ranks),
                      /*seed=*/7, opts);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    model.set_input(0, make_input(in_shape, 99));
    model.forward();
    const double loss = model.loss_bce(make_targets(out_shape, 55));
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 1e-4f});
    Tensor<float> out = model.gather_output(model.output_layer());
    if (comm.rank() == 0) {
      result.output = std::move(out);
      result.loss = loss;
      for (int i = 0; i < model.num_layers(); ++i) {
        for (const auto& p : model.rt(i).params) result.params.push_back(p);
      }
    }
  });
  stream::stop();
  stream::configure(stream::Options{});
  metrics::set_enabled(false);
  trace::set_enabled(false);
  metrics::reset();
  trace::reset();
  return result;
}

void expect_bitwise(const RunResult& got, const RunResult& ref) {
  EXPECT_EQ(got.loss, ref.loss);
  ASSERT_EQ(got.output.shape(), ref.output.shape());
  for (std::int64_t i = 0; i < got.output.size(); ++i) {
    ASSERT_EQ(got.output.data()[i], ref.output.data()[i])
        << "output diverges at flat index " << i;
  }
  ASSERT_EQ(got.params.size(), ref.params.size());
  for (std::size_t p = 0; p < got.params.size(); ++p) {
    ASSERT_EQ(got.params[p].size(), ref.params[p].size());
    for (std::int64_t i = 0; i < got.params[p].size(); ++i) {
      ASSERT_EQ(got.params[p].data()[i], ref.params[p].data()[i])
          << "param " << p << " diverges at flat index " << i;
    }
  }
}

TEST(ObsStream, StreamingIsBitwiseInvisibleAcrossStrategiesAndModes) {
  ObsCleanup cleanup;
  const std::string dir = "/tmp/distconv_obs_stream_exact";
  struct StrategyCase {
    const char* name;
    std::function<core::Strategy(int, int)> make;
  };
  const std::vector<StrategyCase> strategies = {
      {"sample4",
       [](int l, int p) { return core::Strategy::sample_parallel(l, p); }},
      {"spatial_2x2",
       [](int l, int) {
         return core::Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
       }},
      {"channel4",
       [](int l, int) {
         return core::Strategy::uniform(l, ProcessGrid{1, 4, 1, 1});
       }},
  };
  const comm::ProgressMode modes[] = {comm::ProgressMode::kOff,
                                      comm::ProgressMode::kThread,
                                      comm::ProgressMode::kHooks};
  for (const auto& sc : strategies) {
    for (const comm::ProgressMode mode : modes) {
      SCOPED_TRACE(std::string(sc.name) + " progress=" +
                   comm::to_string(mode));
      fs::remove_all(dir);
      const RunResult ref =
          run_once(4, sc.make, mode, /*streaming=*/false, dir);
      const RunResult got =
          run_once(4, sc.make, mode, /*streaming=*/true, dir);
      expect_bitwise(got, ref);
      // The streamed run really streamed: rotated segments are on disk.
      EXPECT_GE(segment_files(dir).size(), 1u);
    }
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace distconv::obs
