// Metrics registry semantics: interned handles, per-rank shard attribution,
// histogram statistics, reset, and the JSON rendering the DC_METRICS dump
// writes (round-tripped through the in-tree JSON parser).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace distconv::obs::metrics {
namespace {

/// Every test starts from a clean, enabled registry and leaves it disabled
/// (collection state is process-global).
struct RegistryFixture : ::testing::Test {
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    log::set_thread_rank(-1);
    set_enabled(false);
    reset();
  }
};

using ObsMetrics = RegistryFixture;

TEST_F(ObsMetrics, CountersAttributeToTheCallingThreadsRank) {
  const Counter c = counter("test.rank_attribution");
  c.add(5);  // this thread carries no rank -> the -1 "process" bucket
  log::set_thread_rank(2);
  c.add(7);
  c.inc();
  log::set_thread_rank(-1);

  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter_for(-1, "test.rank_attribution"), 5u);
  EXPECT_EQ(snap.counter_for(2, "test.rank_attribution"), 8u);
  EXPECT_EQ(snap.counter_for(0, "test.rank_attribution"), 0u);
  EXPECT_EQ(snap.counter_total("test.rank_attribution"), 13u);
}

TEST_F(ObsMetrics, InterningIsIdempotentAcrossHandles) {
  const Counter a = counter("test.same_name");
  const Counter b = counter("test.same_name");
  a.add(3);
  b.add(4);
  EXPECT_EQ(snapshot().counter_total("test.same_name"), 7u);
}

TEST_F(ObsMetrics, DisabledRegistryRecordsNothing) {
  const Counter c = counter("test.disabled");
  set_enabled(false);
  c.add(100);
  set_enabled(true);
  EXPECT_EQ(snapshot().counter_total("test.disabled"), 0u);
}

TEST_F(ObsMetrics, GaugesKeepLastValueAndSupportDeltas) {
  const Gauge g = gauge("test.gauge");
  g.set(10);
  g.add(-3);
  const Snapshot snap = snapshot();
  const auto it = snap.gauges.find("test.gauge");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 7);
}

TEST_F(ObsMetrics, HistogramTracksCountSumMinMaxAndPercentiles) {
  const Histogram h = histogram("test.hist");
  for (const std::uint64_t v : {8u, 16u, 32u, 64u, 1024u}) h.record(v);
  const Snapshot snap = snapshot();
  const auto per_rank = snap.histograms.find(-1);
  ASSERT_NE(per_rank, snap.histograms.end());
  const auto it = per_rank->second.find("test.hist");
  ASSERT_NE(it, per_rank->second.end());
  EXPECT_EQ(it->second.count, 5u);
  EXPECT_EQ(it->second.sum, 8u + 16u + 32u + 64u + 1024u);
  EXPECT_EQ(it->second.min, 8u);
  EXPECT_EQ(it->second.max, 1024u);
  // Bucket-resolution approximations: p50 lands near the median value's
  // bucket, p99 near the max bucket, and they are ordered.
  EXPECT_GT(it->second.p50, 0.0);
  EXPECT_LE(it->second.p50, it->second.p99);
  EXPECT_GE(it->second.p99, 64.0);
}

TEST_F(ObsMetrics, ResetZeroesValuesButKeepsInternedNames) {
  const Counter c = counter("test.reset");
  c.add(9);
  reset();
  EXPECT_EQ(snapshot().counter_total("test.reset"), 0u);
  c.add(2);  // the handle stays valid across reset
  EXPECT_EQ(snapshot().counter_total("test.reset"), 2u);
}

TEST_F(ObsMetrics, ToJsonRoundTripsThroughTheParser) {
  counter("test.json.counter").add(42);
  histogram("test.json.hist").record(100);
  gauge("test.json.gauge").set(-5);
  log::set_thread_rank(1);
  counter("test.json.counter").add(8);
  log::set_thread_rank(-1);

  const std::string text = to_json(snapshot());
  const support::json::Value root = support::json::parse(text);
  ASSERT_TRUE(root.is_object());
  const support::json::Value* ranks = root.find("ranks");
  ASSERT_NE(ranks, nullptr);
  ASSERT_TRUE(ranks->is_object());
  const support::json::Value* rank1 = ranks->find("1");
  ASSERT_NE(rank1, nullptr);
  EXPECT_EQ(rank1->at("counters").at("test.json.counter").number, 8.0);
  // Rank-less shards render under "process", keyed by the -1 pseudo-rank.
  const support::json::Value* process = root.find("process");
  ASSERT_NE(process, nullptr);
  EXPECT_EQ(process->at("-1").at("counters").at("test.json.counter").number,
            42.0);
  EXPECT_EQ(root.at("gauges").at("test.json.gauge").number, -5.0);
}

TEST_F(ObsMetrics, DumpWritesAParsableFile) {
  counter("test.dump.counter").add(1);
  const std::string path = ::testing::TempDir() + "/obs-metrics-test.json";
  dump(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const support::json::Value root = support::json::parse(ss.str());
  ASSERT_TRUE(root.is_object());
  EXPECT_NE(root.find("ranks"), nullptr);
  EXPECT_NE(root.find("gauges"), nullptr);
}

TEST_F(ObsMetrics, NamedSlowPathHelpersAccumulate) {
  add_named("test.named", 3);
  inc_named("test.named");
  EXPECT_EQ(snapshot().counter_total("test.named"), 4u);
}

}  // namespace
}  // namespace distconv::obs::metrics
