// Concurrency stress for the observability hot paths: World rank threads
// training with the progress engine, intra-rank parallel_for workers, and
// extra noise threads all emit counters, histograms, spans and instants at
// once — while another thread snapshots and renders the registry. Built for
// the ThreadSanitizer matrix (cmake --preset tsan); under a plain build it
// still verifies the merged totals.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/layers.hpp"
#include "core/model.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::obs {
namespace {

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

core::NetworkSpec small_conv_net() {
  core::NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, core::BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

TEST(ObsStress, ConcurrentEmittersSnapshottersAndTrainingAreRaceFree) {
  metrics::set_enabled(true);
  trace::set_enabled(true);
  metrics::reset();
  trace::reset();

  constexpr int kNoiseThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  noise.reserve(kNoiseThreads + 1);
  for (int t = 0; t < kNoiseThreads; ++t) {
    noise.emplace_back([t] {
      // Two threads share one name, two intern fresh ones — exercising both
      // the interning lock and the per-thread shard fast path concurrently.
      const metrics::Counter c =
          metrics::counter("stress.counter." + std::to_string(t % 2));
      const metrics::Histogram h = metrics::histogram("stress.hist");
      const metrics::Gauge g = metrics::gauge("stress.gauge");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(i % 512);
        g.set(static_cast<std::int64_t>(i));
        trace::Span span("stress-span", "test");
        span.arg("i", static_cast<double>(i));
        if (i % 64 == 0) trace::emit_instant("stress-tick", "test");
      }
    });
  }
  // A reader races the writers: snapshot + render, repeatedly.
  noise.emplace_back([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const metrics::Snapshot snap = metrics::snapshot();
      const std::string text = metrics::to_json(snap);
      EXPECT_FALSE(text.empty());
      std::this_thread::yield();
    }
  });

  {
    // Real pool workers + the default progress thread keep rank-carrying
    // and rank-less shards active at the same time.
    parallel::ThreadGuard guard(4);
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      const core::NetworkSpec spec = small_conv_net();
      core::Model model(spec, comm,
                        core::Strategy::hybrid(spec.size(), 4, 2), /*seed=*/7);
      const Shape4 in_shape = model.rt(0).out_shape;
      const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
      for (int s = 0; s < 2; ++s) {
        model.set_input(0, make_input(in_shape, 100 + s));
        model.forward();
        model.loss_bce(make_targets(out_shape, 200 + s));
        model.backward();
        model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
      }
    });
  }

  for (int t = 0; t < kNoiseThreads; ++t) noise[t].join();
  stop.store(true, std::memory_order_relaxed);
  noise.back().join();

  // Nothing was lost on the counter fast path, and the final render parses.
  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.counter_total("stress.counter.0") +
                snap.counter_total("stress.counter.1"),
            kNoiseThreads * kPerThread);
  const auto hist_rank = snap.histograms.find(-1);
  ASSERT_NE(hist_rank, snap.histograms.end());
  EXPECT_EQ(hist_rank->second.at("stress.hist").count,
            kNoiseThreads * kPerThread);
  EXPECT_TRUE(
      support::json::parse(metrics::to_json(snap)).is_object());

  metrics::set_enabled(false);
  trace::set_enabled(false);
  metrics::reset();
  trace::reset();
}

}  // namespace
}  // namespace distconv::obs
