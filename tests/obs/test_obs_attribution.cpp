// Step-time attribution end to end: mesh-model training on a 2×2 spatial
// grid with metrics + tracing enabled must (a) decompose every rank's step
// wall clock into compute + exposed comm + completion tail that sum back to
// the wall clock, (b) join the measured counters against the §V cost model
// through obs::compare_to_model with non-zero measured terms for conv
// forward compute, halo exchange, and the gradient allreduce, and (c) dump
// per-rank chrome-trace files that parse as valid JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "models/models.hpp"
#include "obs/compare.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/machine.hpp"
#include "support/json.hpp"

namespace distconv::obs {
namespace {

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

const ModelComparison::Term* find_term(const ModelComparison& cmp,
                                       const std::string& name) {
  for (const auto& t : cmp.terms) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

TEST(ObsAttribution, StepTermsSumToWallAndJoinAgainstTheCostModel) {
  constexpr int kRanks = 4;
  constexpr int kSteps = 3;
  metrics::set_enabled(true);
  trace::set_enabled(true);
  metrics::reset();
  trace::reset();

  // The same deterministic spec/strategy the rank threads build, kept here
  // for the cost-model join after the run.
  const core::NetworkSpec spec = models::make_mesh_model_test(4, 32);
  const core::Strategy strategy =
      core::Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2});

  comm::World world(kRanks);
  world.run([&](comm::Comm& comm) {
    const core::NetworkSpec rank_spec = models::make_mesh_model_test(4, 32);
    core::Model model(rank_spec, comm,
                      core::Strategy::uniform(rank_spec.size(),
                                              ProcessGrid{1, 1, 2, 2}),
                      /*seed=*/7);
    core::Trainer trainer(model, core::TrainerOptions{});
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    for (int s = 0; s < kSteps; ++s) {
      trainer.step_bce(make_input(in_shape, 100 + s),
                       make_targets(out_shape, 200 + s));
    }
  });

  const metrics::Snapshot snap = metrics::snapshot();
  metrics::set_enabled(false);

  // One step.count increment per rank per step.
  EXPECT_EQ(snap.counter_total("step.count"),
            static_cast<std::uint64_t>(kRanks) * kSteps);

  // The acceptance bound: per rank, compute + exposed + tail within 5% of
  // the measured step wall clock (the identity is exact up to clamping).
  for (int r = 0; r < kRanks; ++r) {
    const double wall = double(snap.counter_for(r, "step.wall.ns"));
    const double compute = double(snap.counter_for(r, "step.compute.ns"));
    const double exposed = double(snap.counter_for(r, "step.exposed.ns"));
    const double tail = double(snap.counter_for(r, "step.tail.ns"));
    ASSERT_GT(wall, 0.0) << "rank " << r;
    EXPECT_EQ(snap.counter_for(r, "step.count"),
              static_cast<std::uint64_t>(kSteps));
    EXPECT_NEAR(compute + exposed + tail, wall, 0.05 * wall)
        << "rank " << r << " attribution drifted: compute=" << compute
        << " exposed=" << exposed << " tail=" << tail << " wall=" << wall;
  }

  // Per-layer spans were collected for every rank.
  EXPECT_GT(snap.counter_total("layer.0.fwd.ns"), 0u);
  EXPECT_GT(snap.counter_total("layer.0.bwd.ns"), 0u);

  // The measured-vs-modelled join reports the §V terms with real
  // measurements behind them.
  const ModelComparison cmp =
      compare_to_model(snap, spec, strategy, perf::MachineModel::lassen(),
                       kRanks);
  EXPECT_EQ(cmp.steps, kSteps);
  for (const char* name :
       {"conv fwd compute", "conv bwd compute", "halo exchange",
        "gradient allreduce", "step wall"}) {
    const ModelComparison::Term* term = find_term(cmp, name);
    ASSERT_NE(term, nullptr) << name;
    EXPECT_GT(term->measured_seconds, 0.0) << name;
    EXPECT_GT(term->modelled_seconds, 0.0) << name;
    EXPECT_GT(term->ratio, 0.0) << name;
  }
  EXPECT_FALSE(cmp.str().empty());

  // The trace rings hold per-rank events; the dump must parse per rank.
  const std::string dir = ::testing::TempDir() + "/obs-attr-trace";
  trace::dump(dir);
  trace::set_enabled(false);
  trace::reset();
  for (int r = 0; r < kRanks; ++r) {
    const std::string path = dir + "/trace-rank" + std::to_string(r) + ".json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    const support::json::Value root = support::json::parse(ss.str());
    const support::json::Value& events =
        root.is_array() ? root : root.at("traceEvents");
    ASSERT_TRUE(events.is_array()) << path;
    bool saw_step = false;
    for (const auto& ev : events.array) {
      if (ev.at("ph").string == "X" && ev.at("name").string == "step") {
        saw_step = true;
        EXPECT_NE(ev.find("dur"), nullptr);
      }
    }
    EXPECT_TRUE(saw_step) << path << " has no step span";
  }
}

}  // namespace
}  // namespace distconv::obs
