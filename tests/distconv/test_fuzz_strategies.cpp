// Randomized property test: generated layer DAGs, trained one step under
// randomly chosen *mixed* per-layer strategies (forcing redistribution on
// arbitrary edges), must reproduce the serial result — outputs, loss, and
// post-SGD parameters. This sweeps combinations no hand-written test covers:
// stride-2 stacks over uneven grids, pooling after residual joins, staged
// inputs into stencil layers, BN over shuffled activations, and so on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/layers.hpp"
#include "core/model.hpp"

namespace distconv::core {
namespace {

struct GeneratedNet {
  NetworkSpec spec;
  Shape4 in_shape;
};

GeneratedNet generate_net(std::uint64_t seed) {
  Rng rng(seed, 0xF022);
  NetworkBuilder nb;
  const std::int64_t n = 2 + 2 * rng.next_below(2);       // 2 or 4
  const std::int64_t hw = 12 + 4 * rng.next_below(2);     // 12 or 16
  const int c = 1 + static_cast<int>(rng.next_below(3));  // 1..3
  const Shape4 in_shape{n, c, hw, hw};
  int x = nb.input(in_shape);

  // Track nodes by output shape so Add can pick compatible pairs.
  std::vector<int> trail{x};
  const int body_layers = 3 + static_cast<int>(rng.next_below(4));
  auto shapes = [&nb]() { return nb.spec().infer_shapes(); };
  for (int i = 0; i < body_layers; ++i) {
    const Shape4 cur = shapes()[x];
    const std::uint64_t pick = rng.next_below(10);
    const std::string name = internal::compose("l", i);
    if (pick < 4) {  // conv
      const int kernels_avail[] = {1, 3, 5};
      int k = kernels_avail[rng.next_below(3)];
      // Keep the spatial domain comfortably larger than the kernel.
      if (cur.h < 2 * k) k = 1;
      const int stride = (cur.h >= 8 && rng.next_below(3) == 0) ? 2 : 1;
      const int filters = 2 + static_cast<int>(rng.next_below(4));
      x = nb.conv(name, x, filters, k, stride);
    } else if (pick < 6) {  // relu
      x = nb.relu(name, x);
    } else if (pick < 7) {  // batchnorm (global mode matches serial exactly)
      x = nb.batchnorm(name, x, BatchNormMode::kGlobal);
    } else if (pick < 8 && cur.h >= 8) {  // pool
      if (rng.next_below(2) == 0) {
        x = nb.pool_max(name, x, 2, 2, 0);
      } else {
        x = nb.pool_avg(name, x, 3, 2, 1);
      }
    } else {  // residual: find an earlier node with the same shape
      int partner = -1;
      for (int t : trail) {
        if (shapes()[t] == cur && t != x) partner = t;
      }
      if (partner >= 0) {
        x = nb.add(name, partner, x);
      } else {
        x = nb.relu(name, x);
      }
    }
    trail.push_back(x);
  }
  nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return {nb.take(), in_shape};
}

/// Random grid for one layer, constrained to be safe for its stencil.
/// Includes channel-parallel and channel×spatial grids — empty channel/filter
/// slices (layers narrower than the channel split) are legal and exercised.
ProcessGrid random_grid(Rng& rng, int ranks, const Shape4& in_shape,
                        const Shape4& out_shape, int kernel) {
  const ProcessGrid candidates[] = {
      ProcessGrid{ranks, 1, 1, 1},
      ProcessGrid{1, 1, ranks, 1},
      ProcessGrid{1, 1, 2, ranks / 2},
      ProcessGrid{2, 1, ranks / 2, 1},
      ProcessGrid{2, 1, 1, ranks / 2},
      ProcessGrid{1, 1, ranks / 2, 2},
      ProcessGrid{1, ranks, 1, 1},
      ProcessGrid{2, ranks / 2, 1, 1},
      ProcessGrid{1, 2, ranks / 2, 1},
      ProcessGrid{1, 2, 1, ranks / 2},
  };
  const int O = kernel / 2;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const ProcessGrid g = candidates[rng.next_below(10)];
    if (g.size() != ranks) continue;
    if (out_shape.h < g.h || out_shape.w < g.w) continue;
    if (kernel > 1 && (in_shape.h / g.h <= O || in_shape.w / g.w <= O)) continue;
    return g;
  }
  return ProcessGrid{ranks, 1, 1, 1};
}

struct StepResult {
  Tensor<float> output;
  double loss = 0;
  std::vector<Tensor<float>> params;
};

StepResult run_step(const GeneratedNet& net, int ranks, const Strategy& strategy,
                    std::uint64_t data_seed) {
  StepResult result;
  comm::World world(ranks);
  world.run([&](comm::Comm& comm) {
    Model model(net.spec, comm, strategy, /*seed=*/5);
    Tensor<float> input(net.in_shape);
    Rng rng(data_seed);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    Rng trng(data_seed ^ 0xBEEF);
    for (std::int64_t i = 0; i < targets.size(); ++i) {
      targets.data()[i] = trng.uniform() < 0.5 ? 0.0f : 1.0f;
    }
    const double loss = model.loss_bce(targets);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 1e-4f});
    Tensor<float> out = model.gather_output(model.output_layer());
    if (comm.rank() == 0) {
      result.output = std::move(out);
      result.loss = loss;
      for (int i = 0; i < model.num_layers(); ++i) {
        for (const auto& p : model.rt(i).params) result.params.push_back(p);
      }
    }
  });
  return result;
}

class FuzzStrategies : public ::testing::TestWithParam<int> {};

/// Seed budget: 12 by default; the nightly CI job raises it 10× via
/// DC_FUZZ_SEEDS (failures print their seed in the scoped trace, which the
/// nightly uploads as an artifact).
int fuzz_seed_limit() {
  const char* s = std::getenv("DC_FUZZ_SEEDS");
  const int n = s != nullptr ? std::atoi(s) : 0;
  return 1 + (n > 0 ? n : 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStrategies,
                         ::testing::Range(1, fuzz_seed_limit()));

TEST_P(FuzzStrategies, MixedStrategyMatchesSerial) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const GeneratedNet net = generate_net(seed);
  const int ranks = 4;
  const auto shapes = net.spec.infer_shapes();

  // Random per-layer strategy (input inherits its first child's grid to
  // avoid a pointless initial shuffle; everything else is independent).
  Rng rng(seed, 0x57A7);
  Strategy strategy = Strategy::sample_parallel(net.spec.size(), ranks);
  for (int i = 1; i < net.spec.size(); ++i) {
    const Shape4 in_shape = shapes[net.spec.layer(i).parents()[0]];
    int kernel = 1;
    if (const auto* conv = dynamic_cast<const Conv2dLayer*>(&net.spec.layer(i))) {
      kernel = conv->conv_params().kh;
    } else if (const auto* pool =
                   dynamic_cast<const Pool2dLayer*>(&net.spec.layer(i))) {
      kernel = pool->pool_params().kh;
    }
    strategy.grids[i] = random_grid(rng, ranks, in_shape, shapes[i], kernel);
  }
  strategy.grids[0] = strategy.grids[1];

  SCOPED_TRACE("seed " + std::to_string(seed) + " strategy " + strategy.str());
  const StepResult serial =
      run_step(net, 1, Strategy::sample_parallel(net.spec.size(), 1), 100 + seed);
  const StepResult dist = run_step(net, ranks, strategy, 100 + seed);

  EXPECT_NEAR(dist.loss, serial.loss,
              1e-5 * std::max(1.0, std::abs(serial.loss)));
  ASSERT_EQ(dist.output.shape(), serial.output.shape());
  for (std::int64_t i = 0; i < serial.output.size(); ++i) {
    ASSERT_NEAR(dist.output.data()[i], serial.output.data()[i],
                2e-4f * std::max(1.0f, std::abs(serial.output.data()[i])));
  }
  ASSERT_EQ(dist.params.size(), serial.params.size());
  for (std::size_t p = 0; p < serial.params.size(); ++p) {
    for (std::int64_t i = 0; i < serial.params[p].size(); ++i) {
      ASSERT_NEAR(dist.params[p].data()[i], serial.params[p].data()[i],
                  2e-4f * std::max(1.0f, std::abs(serial.params[p].data()[i])))
          << "param " << p;
    }
  }
}

}  // namespace
}  // namespace distconv::core
