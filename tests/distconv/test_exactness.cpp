// The paper's §III correctness claim: "Our algorithms exactly replicate
// convolution as if it were performed on a single GPU (up to floating point
// accumulation issues)." These tests run the same network, weights and data
// serially (1 rank) and distributed (sample / spatial / hybrid / mixed
// strategies) and compare outputs, losses, and post-update weights.
#include <gtest/gtest.h>

#include <functional>

#include "core/model.hpp"
#include "core/layers.hpp"

namespace distconv::core {
namespace {

struct RunResult {
  Tensor<float> output;
  double loss = 0.0;
  std::vector<Tensor<float>> params;  // all parameters post-SGD, layer order
};

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

/// Run one forward + BCE loss + backward + SGD step under the given strategy.
RunResult run_once(const std::function<NetworkSpec()>& make_spec, int ranks,
                   const std::function<Strategy(int layers, int p)>& make_strategy,
                   const ModelOptions& opts = {}) {
  RunResult result;
  comm::World world(ranks);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = make_spec();
    Model model(spec, comm, make_strategy(spec.size(), ranks), /*seed=*/7, opts);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    model.set_input(0, make_input(in_shape, 99));
    model.forward();
    const double loss = model.loss_bce(make_targets(out_shape, 55));
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 1e-4f});
    Tensor<float> out = model.gather_output(model.output_layer());
    if (comm.rank() == 0) {
      result.output = std::move(out);
      result.loss = loss;
      for (int i = 0; i < model.num_layers(); ++i) {
        for (const auto& p : model.rt(i).params) result.params.push_back(p);
      }
    }
  });
  return result;
}

void expect_close(const Tensor<float>& a, const Tensor<float>& b, float tol,
                  const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const float denom = std::max(1.0f, std::abs(b.data()[i]));
    ASSERT_NEAR(a.data()[i], b.data()[i], tol * denom)
        << what << " diverges at flat index " << i;
  }
}

void expect_same_run(const RunResult& got, const RunResult& ref, float tol) {
  EXPECT_NEAR(got.loss, ref.loss, 1e-5 * std::max(1.0, std::abs(ref.loss)));
  expect_close(got.output, ref.output, tol, "output");
  ASSERT_EQ(got.params.size(), ref.params.size());
  for (std::size_t i = 0; i < got.params.size(); ++i) {
    expect_close(got.params[i], ref.params[i], tol,
                 "param " + std::to_string(i));
  }
}

// A small all-conv network exercising stride, kernel sizes, BN, ReLU.
NetworkSpec small_conv_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.relu("r2", x);
  x = nb.conv("c3", x, 4, 3, 1);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

// With max pooling and a residual connection.
NetworkSpec residual_pool_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 4, 16, 16});
  int x = nb.conv("c1", in, 8, 3, 1);
  x = nb.relu("r1", x);
  const int skip = x;
  int y = nb.conv("c2a", x, 8, 3, 1);
  y = nb.relu("r2a", y);
  y = nb.conv("c2b", y, 8, 3, 1);
  const int sum = nb.add("res", skip, y);
  int z = nb.relu("r2", sum);
  z = nb.pool_max("pool", z, 3, 2, 1);
  z = nb.conv("head", z, 1, 1, 1, 0, true);
  return nb.take();
}

struct StrategyCase {
  const char* name;
  int ranks;
  std::function<Strategy(int, int)> make;
};

std::vector<StrategyCase> strategy_cases() {
  return {
      {"sample4", 4,
       [](int l, int p) { return Strategy::sample_parallel(l, p); }},
      {"spatial_h4", 4,
       [](int l, int) {
         return Strategy::uniform(l, ProcessGrid{1, 1, 4, 1});
       }},
      {"spatial_2x2", 4,
       [](int l, int) {
         return Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
       }},
      {"hybrid_2x(1x2)", 4,
       [](int l, int p) { return Strategy::hybrid(l, p, 2); }},
      {"hybrid_2x(2x2)", 8,
       [](int l, int p) { return Strategy::hybrid(l, p, 4); }},
      {"mixed_spatial_then_sample", 4,
       [](int l, int p) {
         // First half spatial, second half sample-parallel: forces a
         // redistribution (§III-C) mid-network in both directions.
         Strategy s = Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
         for (int i = l / 2; i < l; ++i) s.grids[i] = ProcessGrid{p, 1, 1, 1};
         return s;
       }},
      // Channel/filter parallelism (§III-D): x partitioned on C, y on F,
      // partial-sum forward + reduce-scatter. channel4 also stresses empty
      // slices (layers with C or F < 4 leave some ranks without channels).
      {"channel4", 4,
       [](int l, int) {
         return Strategy::uniform(l, ProcessGrid{1, 4, 1, 1});
       }},
      {"sample2_channel2", 4,
       [](int l, int) {
         return Strategy::uniform(l, ProcessGrid{2, 2, 1, 1});
       }},
      {"channel2_spatial2", 4,
       [](int l, int) {
         // Channel groups combined with a spatial split: the partial-sum
         // reduce-scatter and the halo machinery must compose.
         return Strategy::uniform(l, ProcessGrid{1, 2, 2, 1});
       }},
      {"mixed_spatial_then_channel", 4,
       [](int l, int) {
         // Spatial early layers, channel-parallel deep layers — the §VI-B2
         // mixed regime the optimizer targets; shuffles redistribute between
         // the spatial and channel grids in both directions.
         Strategy s = Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
         for (int i = l / 2; i < l; ++i) s.grids[i] = ProcessGrid{2, 2, 1, 1};
         return s;
       }},
  };
}

TEST(Exactness, SmallConvNetMatchesSerialUnderAllStrategies) {
  const auto ref = run_once(small_conv_net, 1, [](int l, int p) {
    return Strategy::sample_parallel(l, p);
  });
  ASSERT_GT(ref.loss, 0.0);
  for (const auto& sc : strategy_cases()) {
    SCOPED_TRACE(sc.name);
    const auto got = run_once(small_conv_net, sc.ranks, sc.make);
    expect_same_run(got, ref, 2e-4f);
  }
}

TEST(Exactness, ResidualPoolNetMatchesSerialUnderAllStrategies) {
  const auto ref = run_once(residual_pool_net, 1, [](int l, int p) {
    return Strategy::sample_parallel(l, p);
  });
  for (const auto& sc : strategy_cases()) {
    SCOPED_TRACE(sc.name);
    const auto got = run_once(residual_pool_net, sc.ranks, sc.make);
    expect_same_run(got, ref, 2e-4f);
  }
}

TEST(Exactness, OverlapOnAndOffAgreeBitwise) {
  // Interior/boundary decomposition must not change any value: the same
  // floating-point operations happen in the same per-pixel order.
  ModelOptions no_overlap;
  no_overlap.overlap_halo = false;
  const auto a = run_once(small_conv_net, 4, [](int l, int) {
    return Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
  });
  const auto b = run_once(
      small_conv_net, 4,
      [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 1, 2, 2}); },
      no_overlap);
  ASSERT_EQ(a.output.shape(), b.output.shape());
  for (std::int64_t i = 0; i < a.output.size(); ++i) {
    ASSERT_EQ(a.output.data()[i], b.output.data()[i]) << i;
  }
  EXPECT_EQ(a.loss, b.loss);
}

TEST(Exactness, Im2colAlgoMatchesDirectAtModelLevel) {
  // The planner's family knob moved from ModelOptions to the kernel-level
  // override; forcing im2col everywhere must still match planned runs.
  const auto a = run_once(small_conv_net, 4, [](int l, int p) {
    return Strategy::hybrid(l, p, 2);
  });
  kernels::set_conv_algo_override(kernels::ConvAlgo::kIm2col);
  const auto b = run_once(small_conv_net, 4, [](int l, int p) {
    return Strategy::hybrid(l, p, 2);
  });
  kernels::set_conv_algo_override(kernels::ConvAlgo::kAuto);
  expect_same_run(b, a, 1e-4f);
}

TEST(Exactness, RepeatedStepsStayReplicated) {
  // After several optimizer steps, replicated weights must remain bitwise
  // identical across ranks (deterministic allreduce).
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), 3);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    for (int step = 0; step < 3; ++step) {
      model.set_input(0, make_input(in_shape, 100 + step));
      model.forward();
      model.loss_bce(make_targets(out_shape, 200 + step));
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    // Compare every parameter against rank 0 bitwise.
    for (int i = 0; i < model.num_layers(); ++i) {
      for (auto& p : model.rt(i).params) {
        Tensor<float> reference(p.shape());
        std::copy(p.data(), p.data() + p.size(), reference.data());
        comm::broadcast(comm, reference.data(), reference.size(), 0);
        for (std::int64_t j = 0; j < p.size(); ++j) {
          ASSERT_EQ(p.data()[j], reference.data()[j])
              << "layer " << i << " param diverged at " << j;
        }
      }
    }
  });
}

TEST(Exactness, ChannelParallelStepsStayReplicated) {
  // The sliced weight-gradient completion (slice allreduce + allgather over
  // the channel group) must leave the replicated parameters bitwise
  // identical on every rank, across repeated optimizer steps.
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    Model model(spec, comm, Strategy::channel_parallel(spec.size(), 4, 2), 3);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    for (int step = 0; step < 3; ++step) {
      model.set_input(0, make_input(in_shape, 300 + step));
      model.forward();
      model.loss_bce(make_targets(out_shape, 400 + step));
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    for (int i = 0; i < model.num_layers(); ++i) {
      for (auto& p : model.rt(i).params) {
        Tensor<float> reference(p.shape());
        std::copy(p.data(), p.data() + p.size(), reference.data());
        comm::broadcast(comm, reference.data(), reference.size(), 0);
        for (std::int64_t j = 0; j < p.size(); ++j) {
          ASSERT_EQ(p.data()[j], reference.data()[j])
              << "layer " << i << " param diverged at " << j;
        }
      }
    }
  });
}

TEST(Exactness, ChannelParallelMicroBatchingAccumulates) {
  // Gradient accumulation must compose with the sliced weight gradient: two
  // accumulated micro-batches followed by one deferred completion must match
  // the same two batches run with grid.c == 1.
  auto run = [](const Strategy& strategy, int ranks) {
    RunResult result;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = small_conv_net();
      Model model(spec, comm, strategy, /*seed=*/7);
      const Shape4 in_shape = model.rt(0).out_shape;
      const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
      model.zero_gradients();
      double loss = 0.0;
      for (int micro = 0; micro < 2; ++micro) {
        model.set_input(0, make_input(in_shape, 500 + micro));
        model.forward();
        loss += model.loss_bce(make_targets(out_shape, 600 + micro),
                               2 * out_shape.size());
        model.backward(/*accumulate=*/true);
      }
      model.allreduce_gradients();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.0f, 0.0f});
      Tensor<float> out = model.gather_output(model.output_layer());
      if (comm.rank() == 0) {
        result.output = std::move(out);
        result.loss = loss;
        for (int i = 0; i < model.num_layers(); ++i) {
          for (const auto& p : model.rt(i).params) result.params.push_back(p);
        }
      }
    });
    return result;
  };
  const NetworkSpec probe = small_conv_net();
  const auto ref = run(Strategy::sample_parallel(probe.size(), 1), 1);
  const auto got = run(Strategy::channel_parallel(probe.size(), 4, 4), 4);
  expect_same_run(got, ref, 2e-4f);
}

}  // namespace
}  // namespace distconv::core
