// Plan-knob exactness: every knob the conv planner may turn besides the
// algorithm family — lowering strips, thread caps, NUMA homes, and the
// gemm-strips zero-copy upgrade — must leave results bitwise unchanged, and
// the plans themselves must not depend on the thread budget. Winograd, the
// one tolerance-mode family, is checked against direct within tolerance on
// edge-heavy geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/conv.hpp"
#include "perf/conv_planner.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::kernels {
namespace {

struct Case {
  Tensor<float> x, w, y;
  Origin2 xo{0, 0}, yo{0, 0};
  ConvParams p;
};

Case make_case(std::int64_t n, std::int64_t c, std::int64_t f, std::int64_t h,
               std::int64_t w, int k, int s, std::uint64_t seed) {
  Case cs;
  cs.p = ConvParams{k, k, s, s, k / 2, k / 2};
  cs.x = Tensor<float>(Shape4{n, c, h + 2 * cs.p.ph, w + 2 * cs.p.pw});
  cs.w = Tensor<float>(Shape4{f, c, k, k});
  cs.y = Tensor<float>(Shape4{n, f, cs.p.out_h(h), cs.p.out_w(w)});
  Rng rng(seed);
  cs.x.fill_uniform(rng);
  cs.w.fill_uniform(rng);
  cs.xo = Origin2{-cs.p.ph, -cs.p.pw};
  return cs;
}

void expect_bitwise(const Tensor<float>& a, const Tensor<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
}

/// Full output range plus an offset sub-range: the sub-range breaks the
/// dense-planes condition (r.w0 != origin.w), forcing gemm-strips onto its
/// per-operand pack fallbacks, which must be bitwise too.
std::vector<Range2> ranges_of(const Case& cs) {
  const Range2 full{0, cs.y.shape().h, 0, cs.y.shape().w};
  Range2 inner = full;
  inner.h0 = 1;
  inner.w0 = 1;
  inner.w1 = full.w1 - 1;
  return {full, inner};
}

TEST(ConvPlans, GemmStripsForwardBitwiseEqualsIm2col) {
  Case cs = make_case(2, 64, 32, 14, 14, /*k=*/1, /*s=*/1, 7);
  for (const Range2& r : ranges_of(cs)) {
    ConvPlan im2col;
    im2col.algo = ConvAlgo::kIm2col;
    cs.y.zero();
    conv2d_forward(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, r, im2col);
    Tensor<float> ref(cs.y.shape());
    std::memcpy(ref.data(), cs.y.data(),
                static_cast<std::size_t>(cs.y.size()) * sizeof(float));

    ConvPlan strips;
    strips.algo = ConvAlgo::kGemmStrips;
    for (std::int64_t se : {std::int64_t{1} << 17, std::int64_t{1} << 21}) {
      strips.strip_elems = se;
      cs.y.zero();
      conv2d_forward(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, r, strips);
      expect_bitwise(cs.y, ref);
    }
  }
}

TEST(ConvPlans, GemmStripsBackwardDataBitwiseEqualsIm2col) {
  Case cs = make_case(2, 64, 32, 14, 14, 1, 1, 11);
  Rng rng(13);
  cs.y.fill_uniform(rng);  // dy
  const Range2 in_full{0, 14, 0, 14};
  Range2 in_inner = in_full;
  in_inner.h0 = 1;
  in_inner.w0 = 2;
  for (const Range2& r : {in_full, in_inner}) {
    ConvPlan im2col;
    im2col.algo = ConvAlgo::kIm2col;
    cs.x.zero();
    conv2d_backward_data(cs.y, cs.yo, cs.w, cs.x, cs.xo, cs.p, r,
                         cs.y.shape().h, cs.y.shape().w, im2col);
    Tensor<float> ref(cs.x.shape());
    std::memcpy(ref.data(), cs.x.data(),
                static_cast<std::size_t>(cs.x.size()) * sizeof(float));

    ConvPlan strips;
    strips.algo = ConvAlgo::kGemmStrips;
    strips.strip_elems = std::int64_t{1} << 17;
    cs.x.zero();
    conv2d_backward_data(cs.y, cs.yo, cs.w, cs.x, cs.xo, cs.p, r,
                         cs.y.shape().h, cs.y.shape().w, strips);
    expect_bitwise(cs.x, ref);
  }
}

TEST(ConvPlans, GemmStripsBackwardFilterBitwiseEqualsIm2col) {
  Case cs = make_case(2, 64, 32, 14, 14, 1, 1, 17);
  Rng rng(19);
  cs.y.fill_uniform(rng);  // dy
  for (const Range2& r : ranges_of(cs)) {
    ConvPlan im2col;
    im2col.algo = ConvAlgo::kIm2col;
    Tensor<float> dw_ref(cs.w.shape());
    dw_ref.zero();
    conv2d_backward_filter(cs.x, cs.xo, cs.y, cs.yo, dw_ref, cs.p, r,
                           /*accumulate=*/false, im2col);

    ConvPlan strips;
    strips.algo = ConvAlgo::kGemmStrips;
    Tensor<float> dw(cs.w.shape());
    dw.zero();
    conv2d_backward_filter(cs.x, cs.xo, cs.y, cs.yo, dw, cs.p, r,
                           /*accumulate=*/false, strips);
    expect_bitwise(dw, dw_ref);
  }
}

TEST(ConvPlans, PlacementAndStripKnobsNeverChangeBits) {
  // The non-algorithm knobs across both families, under a real thread pool.
  parallel::ThreadGuard threads(4);
  Case cs = make_case(1, 48, 24, 12, 12, /*k=*/3, /*s=*/1, 23);
  const Range2 full{0, cs.y.shape().h, 0, cs.y.shape().w};
  ConvPlan base;
  base.algo = ConvAlgo::kIm2col;
  cs.y.zero();
  conv2d_forward(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, full, base);
  Tensor<float> ref(cs.y.shape());
  std::memcpy(ref.data(), cs.y.data(),
              static_cast<std::size_t>(cs.y.size()) * sizeof(float));

  for (std::int64_t se : {std::int64_t{0}, std::int64_t{1} << 17}) {
    for (int cap : {0, 1, 3}) {
      ConvPlan plan = base;
      plan.strip_elems = se;
      plan.thread_cap = cap;
      plan.numa_node = cap == 3 ? 0 : -1;  // a home hint rides along once
      cs.y.zero();
      conv2d_forward(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, full, plan);
      expect_bitwise(cs.y, ref);
    }
  }
}

TEST(ConvPlans, PlansDoNotDependOnThreadBudget) {
  // The planner prices on a canonical thread count: the same layer must get
  // the same plan whether the pool runs 1 thread or 8.
  perf::set_conv_plan_cache_path("");
  perf::set_conv_plan_mode(perf::ConvPlanMode::kModel);
  const ConvParams shapes[] = {ConvParams{1, 1, 1, 1, 0, 0},
                               ConvParams{3, 3, 1, 1, 1, 1},
                               ConvParams{7, 7, 2, 2, 3, 3}};
  const ConvPass passes[] = {ConvPass::kForward, ConvPass::kBackwardData,
                             ConvPass::kBackwardFilter};
  std::vector<ConvPlan> at_one;
  {
    parallel::ThreadGuard threads(1);
    perf::clear_conv_plan_cache();
    for (const auto& p : shapes) {
      for (ConvPass pass : passes) {
        at_one.push_back(perf::conv_plan_for(pass, p, 96, 64));
      }
    }
  }
  std::size_t i = 0;
  {
    parallel::ThreadGuard threads(8);
    perf::clear_conv_plan_cache();
    for (const auto& p : shapes) {
      for (ConvPass pass : passes) {
        const ConvPlan plan = perf::conv_plan_for(pass, p, 96, 64);
        EXPECT_EQ(plan.algo, at_one[i].algo) << "shape/pass " << i;
        EXPECT_EQ(plan.strip_elems, at_one[i].strip_elems) << i;
        EXPECT_EQ(plan.thread_cap, at_one[i].thread_cap) << i;
        EXPECT_EQ(plan.numa_node, at_one[i].numa_node) << i;
        ++i;
      }
    }
  }
  perf::clear_conv_plan_cache();
}

TEST(ConvPlans, WinogradWithinToleranceOfDirect) {
  // Odd extents: the 13×13 output needs a phantom tile row and column, and
  // the offset sub-range lands tiles on every edge flavour.
  Case cs = make_case(2, 32, 16, 13, 13, /*k=*/3, /*s=*/1, 29);
  const Range2 full{0, 13, 0, 13};
  Range2 inner{1, 12, 3, 10};
  for (const Range2& r : {full, inner}) {
    ConvPlan direct;
    direct.algo = ConvAlgo::kDirect;
    cs.y.zero();
    conv2d_forward(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, r, direct);
    Tensor<float> ref(cs.y.shape());
    std::memcpy(ref.data(), cs.y.data(),
                static_cast<std::size_t>(cs.y.size()) * sizeof(float));

    cs.y.zero();
    conv2d_forward_winograd(cs.x, cs.xo, cs.w, cs.y, cs.yo, cs.p, r);
    for (std::int64_t i = 0; i < cs.y.size(); ++i) {
      EXPECT_NEAR(cs.y.data()[i], ref.data()[i], 2e-3f) << "element " << i;
    }
  }
}

TEST(ConvPlans, AlgoOverrideWinsWhenApplicable) {
  // DC_CONV_ALGO's programmatic twin: the forced family takes every shape
  // it can execute; inapplicable shapes keep their planned algorithm.
  Case one = make_case(1, 64, 32, 8, 8, 1, 1, 31);
  Case three = make_case(1, 8, 8, 8, 8, 3, 1, 37);
  const Range2 r1{0, one.y.shape().h, 0, one.y.shape().w};
  const Range2 r3{0, three.y.shape().h, 0, three.y.shape().w};

  set_conv_algo_override(ConvAlgo::kDirect);
  one.y.zero();
  conv2d_forward(one.x, one.xo, one.w, one.y, one.yo, one.p, r1);
  Tensor<float> forced(one.y.shape());
  std::memcpy(forced.data(), one.y.data(),
              static_cast<std::size_t>(one.y.size()) * sizeof(float));
  set_conv_algo_override(ConvAlgo::kAuto);

  ConvPlan direct;
  direct.algo = ConvAlgo::kDirect;
  one.y.zero();
  conv2d_forward(one.x, one.xo, one.w, one.y, one.yo, one.p, r1, direct);
  expect_bitwise(one.y, forced);  // the override really ran direct

  // Forcing gemm-strips cannot apply to a 3×3 layer: it must still run
  // (via its planned family), not die.
  set_conv_algo_override(ConvAlgo::kGemmStrips);
  three.y.zero();
  conv2d_forward(three.x, three.xo, three.w, three.y, three.yo, three.p, r3);
  set_conv_algo_override(ConvAlgo::kAuto);
  SUCCEED();
}

}  // namespace
}  // namespace distconv::kernels
