// Eval-mode forward: batchnorm running statistics, inference normalization,
// and the bitwise-exactness contract — distributed eval-mode forward must
// reproduce the single-rank oracle bit for bit under every strategy in the
// pool (sample, spatial, hybrid, channel, mixed), because inference-mode
// operators keep each output element's floating-point accumulation chain
// rank-count independent (channel-parallel convs switch to the allgather-x
// schedule for exactly this reason).
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::core {
namespace {

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

// A small all-conv network exercising stride, kernel sizes, BN, ReLU.
NetworkSpec small_conv_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.batchnorm("bn2", x, BatchNormMode::kGlobal);
  x = nb.relu("r2", x);
  x = nb.conv("c3", x, 4, 3, 1);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

/// Train the single-rank oracle for `steps`, checkpoint it (v2: params +
/// running stats), and return the checkpoint blob plus its eval-mode output
/// on `eval_input`.
struct Oracle {
  std::string blob;
  Tensor<float> eval_output;
};

Oracle run_oracle(const std::function<NetworkSpec()>& make_spec, int steps,
                  const Tensor<float>& eval_input) {
  Oracle oracle;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = make_spec();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    for (int s = 0; s < steps; ++s) {
      model.set_input(0, make_input(in_shape, 100 + s));
      model.forward();
      model.loss_bce(make_targets(out_shape, 200 + s));
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    std::ostringstream out;
    save_checkpoint(model, out);
    oracle.blob = out.str();
    model.set_input(0, eval_input);
    model.forward(Mode::kInference);
    oracle.eval_output = model.gather_output(model.output_layer());
  });
  return oracle;
}

struct StrategyCase {
  const char* name;
  int ranks;
  std::function<Strategy(int, int)> make;
};

std::vector<StrategyCase> strategy_cases() {
  return {
      {"sample4", 4,
       [](int l, int p) { return Strategy::sample_parallel(l, p); }},
      {"spatial_h4", 4,
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 1, 4, 1}); }},
      {"spatial_2x2", 4,
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 1, 2, 2}); }},
      {"hybrid_2x(1x2)", 4,
       [](int l, int p) { return Strategy::hybrid(l, p, 2); }},
      {"channel4", 4,
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 4, 1, 1}); }},
      {"sample2_channel2", 4,
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{2, 2, 1, 1}); }},
      {"channel2_spatial2", 4,
       [](int l, int) { return Strategy::uniform(l, ProcessGrid{1, 2, 2, 1}); }},
      {"mixed_spatial_then_channel", 4,
       [](int l, int) {
         Strategy s = Strategy::uniform(l, ProcessGrid{1, 1, 2, 2});
         for (int i = l / 2; i < l; ++i) s.grids[i] = ProcessGrid{2, 2, 1, 1};
         return s;
       }},
  };
}

TEST(EvalMode, DistributedEvalBitwiseMatchesOracleAcrossStrategies) {
  const Shape4 in_shape{4, 3, 16, 16};
  const Tensor<float> eval_input = make_input(in_shape, 999);
  const Oracle oracle = run_oracle(small_conv_net, 2, eval_input);

  for (const auto& sc : strategy_cases()) {
    for (const int threads : {1, 8}) {
      parallel::ThreadGuard guard(threads);
      SCOPED_TRACE(std::string(sc.name) + " threads=" +
                   std::to_string(threads));
      comm::World world(sc.ranks);
      world.run([&](comm::Comm& comm) {
        const NetworkSpec spec = small_conv_net();
        Model model(spec, comm, sc.make(spec.size(), sc.ranks), /*seed=*/3);
        std::istringstream in(oracle.blob);
        load_checkpoint(model, in);
        model.set_input(0, eval_input);
        model.forward(Mode::kInference);
        Tensor<float> out = model.gather_output(model.output_layer());
        if (comm.rank() == 0) {
          ASSERT_EQ(out.shape(), oracle.eval_output.shape());
          for (std::int64_t i = 0; i < out.size(); ++i) {
            ASSERT_EQ(out.data()[i], oracle.eval_output.data()[i])
                << "eval output diverges from the oracle at flat index " << i;
          }
        }
      });
    }
  }
}

TEST(EvalMode, TrainDistributedCheckpointServeUnderDifferentGrid) {
  // Train under one grid, checkpoint, restore into the single-rank oracle
  // *and* into a different serving grid: both eval forwards must agree
  // bitwise (the replicated parameters and running statistics are identical
  // by construction, and eval-mode forward is rank-count independent).
  const Shape4 in_shape{4, 3, 16, 16};
  const Tensor<float> eval_input = make_input(in_shape, 1234);

  std::string blob;
  {
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = small_conv_net();
      Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), 7);
      const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
      for (int s = 0; s < 2; ++s) {
        model.set_input(0, make_input(in_shape, 300 + s));
        model.forward();
        model.loss_bce(make_targets(out_shape, 400 + s));
        model.backward();
        model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
      }
      if (comm.rank() == 0) {
        std::ostringstream out;
        save_checkpoint(model, out);
        blob = out.str();
      }
    });
  }

  auto eval_under = [&](int ranks, const Strategy& strategy) {
    Tensor<float> result;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = small_conv_net();
      Model model(spec, comm, strategy, /*seed=*/11);
      std::istringstream in(blob);
      load_checkpoint(model, in);
      model.set_input(0, eval_input);
      model.forward(Mode::kInference);
      Tensor<float> out = model.gather_output(model.output_layer());
      if (comm.rank() == 0) result = std::move(out);
    });
    return result;
  };

  const NetworkSpec probe = small_conv_net();
  const Tensor<float> ref =
      eval_under(1, Strategy::sample_parallel(probe.size(), 1));
  const Tensor<float> served =
      eval_under(4, Strategy::channel_parallel(probe.size(), 4, 2));
  ASSERT_EQ(ref.shape(), served.shape());
  for (std::int64_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.data()[i], served.data()[i]) << "index " << i;
  }
}

TEST(EvalMode, RunningStatsTrackGlobalBatchEma) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 3, 8, 8});
    nb.batchnorm("bn", in, BatchNormMode::kGlobal);
    const NetworkSpec spec = nb.take();
    ModelOptions opts;
    opts.bn_momentum = 0.75f;
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 1, opts);

    std::vector<double> ema_mean(3, 0.0), ema_var(3, 1.0);
    for (int step = 0; step < 2; ++step) {
      const Tensor<float> x = make_input(Shape4{2, 3, 8, 8}, 40 + step);
      model.set_input(0, x);
      model.forward();
      // Hand-computed batch statistics (same double accumulation).
      for (int c = 0; c < 3; ++c) {
        double s = 0, s2 = 0;
        for (std::int64_t n = 0; n < 2; ++n)
          for (std::int64_t h = 0; h < 8; ++h)
            for (std::int64_t w = 0; w < 8; ++w) {
              const double v = x(n, c, h, w);
              s += v;
              s2 += v * v;
            }
        const double count = 2 * 8 * 8;
        const double m = s / count;
        const double var = std::max(0.0, s2 / count - m * m);
        ema_mean[c] = 0.75 * ema_mean[c] + 0.25 * m;
        ema_var[c] = 0.75 * ema_var[c] + 0.25 * var;
      }
    }
    const auto& rt = model.rt(1);
    ASSERT_EQ(rt.buffers.size(), 3u);
    EXPECT_EQ(rt.buffers[2].data()[0], 2.0f);  // two tracked forwards
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(rt.buffers[0].data()[c], ema_mean[c], 1e-5) << "mean " << c;
      EXPECT_NEAR(rt.buffers[1].data()[c], ema_var[c], 1e-5) << "var " << c;
    }
  });
}

TEST(EvalMode, RunningStatsReplicatedAcrossRanksAllModes) {
  // Whatever BN mode normalizes training, the tracked running statistics are
  // the globally aggregated EMA — bitwise identical on every rank (they feed
  // replicated checkpoints and replicated eval).
  for (const BatchNormMode mode :
       {BatchNormMode::kLocal, BatchNormMode::kSpatial, BatchNormMode::kGlobal}) {
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{4, 3, 8, 8});
      const int c1 = nb.conv("c1", in, 4, 3, 1);
      nb.batchnorm("bn", c1, mode);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), 1);
      model.set_input(0, make_input(Shape4{4, 3, 8, 8}, 77));
      model.forward();
      for (const auto& b : model.rt(2).buffers) {
        Tensor<float> reference(b.shape());
        std::copy(b.data(), b.data() + b.size(), reference.data());
        comm::broadcast(comm, reference.data(), reference.size(), 0);
        for (std::int64_t i = 0; i < b.size(); ++i) {
          ASSERT_EQ(b.data()[i], reference.data()[i])
              << "buffer diverged across ranks at " << i;
        }
      }
    });
  }
}

TEST(EvalMode, InferenceForwardMutatesNoState) {
  // step | eval | step must leave exactly the same replicated state as
  // step | step: the interleaved eval forward may not touch parameters,
  // velocity, or running statistics.
  auto run = [&](bool eval_between) {
    std::vector<Tensor<float>> state;
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = small_conv_net();
      Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), 7);
      const Shape4 in_shape = model.rt(0).out_shape;
      const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
      for (int s = 0; s < 2; ++s) {
        model.set_input(0, make_input(in_shape, 500 + s));
        model.forward();
        model.loss_bce(make_targets(out_shape, 600 + s));
        model.backward();
        model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
        if (eval_between && s == 0) {
          model.set_input(0, make_input(in_shape, 555));
          model.forward(Mode::kInference);
        }
      }
      if (comm.rank() == 0) {
        for (int i = 0; i < model.num_layers(); ++i) {
          for (const auto& p : model.rt(i).params) state.push_back(p);
          for (const auto& b : model.rt(i).buffers) state.push_back(b);
        }
      }
    });
    return state;
  };
  const auto plain = run(false);
  const auto with_eval = run(true);
  ASSERT_EQ(plain.size(), with_eval.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i].size(), with_eval[i].size());
    for (std::int64_t j = 0; j < plain[i].size(); ++j) {
      ASSERT_EQ(plain[i].data()[j], with_eval[i].data()[j])
          << "state tensor " << i << " diverged at " << j;
    }
  }
}

TEST(EvalMode, TrackingKnobOffSkipsRunningStats) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    ModelOptions opts;
    opts.bn_track_running_stats = false;
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7, opts);
    model.set_input(0, make_input(model.rt(0).out_shape, 11));
    model.forward();
    EXPECT_EQ(model.rt(2).buffers[2].data()[0], 0.0f);  // bn1 untracked
    for (std::int64_t c = 0; c < model.rt(2).buffers[0].size(); ++c) {
      EXPECT_EQ(model.rt(2).buffers[0].data()[c], 0.0f);
      EXPECT_EQ(model.rt(2).buffers[1].data()[c], 1.0f);
    }
  });
}

TEST(EvalMode, FreshModelFallsBackToBatchStats) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Tensor<float> x = make_input(in_shape, 42);
    model.set_input(0, x);
    model.forward(Mode::kInference);  // no running stats → batch-stat path
    const Tensor<float> eval_out = model.gather_output(model.output_layer());
    // Inference must not have tracked anything ("bn1" is layer 2).
    ASSERT_EQ(model.rt(2).buffers.size(), 3u);
    EXPECT_EQ(model.rt(2).buffers[2].data()[0], 0.0f);
    model.set_input(0, x);
    model.forward(Mode::kTraining);
    const Tensor<float> train_out = model.gather_output(model.output_layer());
    EXPECT_EQ(model.rt(2).buffers[2].data()[0], 1.0f);
    for (std::int64_t i = 0; i < eval_out.size(); ++i) {
      ASSERT_EQ(eval_out.data()[i], train_out.data()[i]) << i;
    }
  });
}

TEST(EvalMode, BackwardAfterInferenceForwardThrows) {
  comm::World world(1);
  EXPECT_THROW(
      world.run([&](comm::Comm& comm) {
        const NetworkSpec spec = small_conv_net();
        Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
        const Shape4 in_shape = model.rt(0).out_shape;
        const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
        model.set_input(0, make_input(in_shape, 1));
        model.forward(Mode::kInference);
        model.loss_bce(make_targets(out_shape, 2));
        model.backward();
      }),
      Error);
}

}  // namespace
}  // namespace distconv::core
