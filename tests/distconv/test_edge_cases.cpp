// Regression tests for decomposition edge cases: empty local blocks (more
// ranks than rows/samples), stride-2 stacks shrinking domains below the grid
// size, and deep models whose late layers collapse to 1×1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/layers.hpp"
#include "core/model.hpp"
#include "models/models.hpp"

namespace distconv::core {
namespace {

Tensor<float> gather_params_digest(Model& model) {
  // Hash-ish digest: concatenated first/last weights of each layer.
  std::vector<float> values;
  for (int i = 0; i < model.num_layers(); ++i) {
    for (const auto& p : model.rt(i).params) {
      values.push_back(p.data()[0]);
      values.push_back(p.data()[p.size() - 1]);
    }
  }
  Tensor<float> t(Shape4{1, 1, 1, static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

// The regression that bit the mesh model: a stride-2 conv whose output has
// fewer rows than the spatial grid leaves some ranks with input rows but an
// empty output block; their backward-data still needs dL/dy halos.
TEST(EdgeCases, EmptyOutputBlocksBackpropagate) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 2, 4, 4});
    int x = nb.conv("c1", in, 4, 3, 2);   // 4x4 -> 2x2
    x = nb.conv("c2", x, 4, 3, 2);        // 2x2 -> 1x1 (empty blocks on 2x2 grid)
    x = nb.conv("head", x, 1, 1, 1, 0, true);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}),
                3);
    Tensor<float> input(Shape4{2, 2, 4, 4});
    Rng rng(1);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.1f, 0.0f, 0.0f});
    EXPECT_TRUE(std::isfinite(loss));
  });
}

TEST(EdgeCases, EmptyOutputBlocksMatchSerial) {
  auto run_once = [](int ranks, const ProcessGrid& grid) {
    Tensor<float> digest;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{2, 2, 8, 8});
      int x = nb.conv("c1", in, 4, 3, 2);
      x = nb.conv("c2", x, 4, 3, 2);
      x = nb.conv("c3", x, 4, 3, 2);  // 1x1 output on spatial grids
      x = nb.conv("head", x, 1, 1, 1, 0, true);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm, Strategy::uniform(spec.size(), grid), 5);
      Tensor<float> input(Shape4{2, 2, 8, 8});
      Rng rng(9);
      input.fill_uniform(rng);
      model.set_input(0, input);
      model.forward();
      Tensor<float> targets(model.rt(model.output_layer()).out_shape);
      targets.fill(1.0f);
      model.loss_bce(targets);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.1f, 0.0f, 0.0f});
      Tensor<float> d = gather_params_digest(model);
      if (comm.rank() == 0) digest = std::move(d);
    });
    return digest;
  };
  const Tensor<float> serial = run_once(1, ProcessGrid{1, 1, 1, 1});
  const Tensor<float> spatial = run_once(4, ProcessGrid{1, 1, 2, 2});
  ASSERT_EQ(serial.size(), spatial.size());
  for (std::int64_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(spatial.data()[i], serial.data()[i],
                2e-4f * std::max(1.0f, std::abs(serial.data()[i])))
        << i;
  }
}

TEST(EdgeCases, MoreRanksThanSamples) {
  // Sample parallelism with empty sample shards on the excess ranks.
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 2, 8, 8});
    int x = nb.conv("c1", in, 4, 3, 1);
    x = nb.conv("head", x, 1, 1, 1, 0, true);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 4), 7);
    Tensor<float> input(Shape4{2, 2, 8, 8});
    Rng rng(2);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    EXPECT_TRUE(std::isfinite(loss));
  });
}

TEST(EdgeCases, FullMeshTestModelTrainsUnderSpatialGrid) {
  // The mesh test model runs six stride-2 blocks down to a 1×1 output while
  // every layer keeps a 2×2 spatial grid.
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const NetworkSpec spec = models::make_mesh_model_test(2, 64);
    Model model(spec, comm,
                Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}), 5);
    Tensor<float> input(model.rt(0).out_shape);
    Rng rng(4);
    input.fill_uniform(rng);
    model.set_input(0, input);
    double first = 0, last = 0;
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    targets.fill(1.0f);
    for (int step = 0; step < 8; ++step) {
      model.forward();
      const double loss = model.loss_bce(targets);
      if (step == 0) first = loss;
      last = loss;
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.3f, 0.9f, 0.0f});
    }
    EXPECT_LT(last, first);
  });
}

TEST(EdgeCases, OddSizesWithUnevenPartitions) {
  // 17×13 input on a 3×2 grid: unequal blocks, stride 2, odd kernel.
  comm::World world(6);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{3, 2, 17, 13});
    int x = nb.conv("c1", in, 4, 3, 1);
    x = nb.conv("c2", x, 4, 5, 2);
    x = nb.conv("head", x, 1, 1, 1, 0, true);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::uniform(spec.size(), ProcessGrid{1, 1, 3, 2}),
                11);
    Tensor<float> input(Shape4{3, 2, 17, 13});
    Rng rng(6);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    EXPECT_TRUE(std::isfinite(loss));
  });
}

}  // namespace
}  // namespace distconv::core
