// Component-level checks of the engine: spec validation, builder wiring,
// strategy helpers, memory accounting, and error paths.
#include <gtest/gtest.h>

#include "core/layers.hpp"
#include "core/model.hpp"

namespace distconv::core {
namespace {

TEST(Spec, TopologicalOrderEnforced) {
  NetworkSpec spec;
  EXPECT_THROW(spec.add(std::make_unique<ReluLayer>("r", 0)), Error);
  spec.add(std::make_unique<InputLayer>("in", Shape4{1, 1, 4, 4}));
  EXPECT_NO_THROW(spec.add(std::make_unique<ReluLayer>("r", 0)));
  EXPECT_THROW(spec.add(std::make_unique<ReluLayer>("bad", 5)), Error);
}

TEST(Spec, ShapeInferenceThroughStack) {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{2, 3, 224, 224});
  const int c1 = nb.conv("conv1", in, 64, 7, 2, 3);
  const int p1 = nb.pool_max("pool1", c1, 3, 2, 1);
  const int g = nb.global_avg_pool("gap", p1);
  const int fc = nb.fully_connected("fc", g, 10);
  const NetworkSpec spec = nb.take();
  const auto shapes = spec.infer_shapes();
  EXPECT_EQ(shapes[c1], (Shape4{2, 64, 112, 112}));
  EXPECT_EQ(shapes[p1], (Shape4{2, 64, 56, 56}));
  EXPECT_EQ(shapes[g], (Shape4{2, 64, 1, 1}));
  EXPECT_EQ(shapes[fc], (Shape4{2, 10, 1, 1}));
}

TEST(Spec, ChildrenAdjacency) {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{1, 1, 8, 8});
  const int a = nb.conv("a", in, 2, 3);
  const int b = nb.conv("b", in, 2, 3);
  const int s = nb.add("s", a, b);
  const NetworkSpec spec = nb.take();
  const auto ch = spec.children();
  EXPECT_EQ(ch[in], (std::vector<int>{a, b}));
  EXPECT_EQ(ch[a], (std::vector<int>{s}));
  EXPECT_EQ(ch[s], (std::vector<int>{}));
}

TEST(Spec, AddLayerShapeMismatchThrows) {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{1, 2, 8, 8});
  const int a = nb.conv("a", in, 2, 3);
  const int b = nb.conv("b", in, 3, 3);  // different filter count
  nb.add("bad", a, b);
  const NetworkSpec spec = nb.take();
  EXPECT_THROW(spec.infer_shapes(), Error);
}

TEST(Spec, ConvSmallerThanKernelThrows) {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{1, 1, 2, 2});
  nb.conv("c", in, 1, 7, 1, 0);
  EXPECT_THROW(nb.spec().infer_shapes(), Error);
}

TEST(Strategy, SpatialFactorsNearSquare) {
  EXPECT_EQ(Strategy::spatial_factors(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(Strategy::spatial_factors(2), (std::pair<int, int>{2, 1}));
  EXPECT_EQ(Strategy::spatial_factors(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(Strategy::spatial_factors(8), (std::pair<int, int>{4, 2}));
  EXPECT_EQ(Strategy::spatial_factors(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(Strategy::spatial_factors(6), (std::pair<int, int>{3, 2}));
}

TEST(Strategy, HybridValidatesDivisibility) {
  EXPECT_THROW(Strategy::hybrid(3, 4, 3), Error);
  const Strategy s = Strategy::hybrid(3, 8, 4);
  EXPECT_EQ(s.grids[0], (ProcessGrid{2, 1, 2, 2}));
}

TEST(Model, StrategySizeMismatchThrows) {
  comm::World world(2);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 NetworkBuilder nb;
                 nb.input(Shape4{1, 1, 4, 4});
                 const NetworkSpec spec = nb.take();
                 Strategy s;  // empty
                 Model model(spec, comm, s);
               }),
               Error);
}

TEST(Model, GridNotSpanningCommThrows) {
  comm::World world(4);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 NetworkBuilder nb;
                 nb.input(Shape4{1, 1, 4, 4});
                 const NetworkSpec spec = nb.take();
                 Model model(spec, comm,
                             Strategy::uniform(1, ProcessGrid{2, 1, 1, 1}));
               }),
               Error);
}

TEST(Model, ChannelParallelGridExecutes) {
  // c > 1 grids used to be rejected by the engine (channel/filter parallelism
  // was modelled only); they now run the §III-D schedule end-to-end.
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 4, 4, 4});
    nb.conv("c", in, 4, 3, 1);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::channel_parallel(spec.size(), 2, 2));
    EXPECT_TRUE(model.is_channel_parallel(1));
    EXPECT_EQ(model.channel_comm(1).size(), 2);
    EXPECT_EQ(model.slice_comm(1).size(), 1);
    Tensor<float> input(Shape4{2, 4, 4, 4});
    Rng rng(11);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    const Tensor<float> out = model.gather_output(1);
    EXPECT_EQ(out.shape(), (Shape4{2, 4, 4, 4}));
  });
}

TEST(Model, FullyConnectedRejectsChannelGrid) {
  comm::World world(2);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 NetworkBuilder nb;
                 const int in = nb.input(Shape4{2, 4, 1, 1});
                 nb.fully_connected("fc", in, 3);
                 const NetworkSpec spec = nb.take();
                 Model model(spec, comm,
                             Strategy::uniform(2, ProcessGrid{1, 2, 1, 1}));
                 Tensor<float> input(Shape4{2, 4, 1, 1});
                 Rng rng(1);
                 input.fill_uniform(rng);
                 model.set_input(0, input);
                 model.forward();
               }),
               Error);
}

TEST(Model, InputShapeMismatchThrows) {
  comm::World world(1);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 NetworkBuilder nb;
                 nb.input(Shape4{1, 1, 4, 4});
                 const NetworkSpec spec = nb.take();
                 Model model(spec, comm, Strategy::sample_parallel(1, 1));
                 model.set_input(0, Tensor<float>(Shape4{1, 1, 5, 5}));
               }),
               Error);
}

TEST(Model, BackwardWithoutLossThrows) {
  comm::World world(1);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 NetworkBuilder nb;
                 const int in = nb.input(Shape4{1, 1, 4, 4});
                 nb.conv("c", in, 1, 3);
                 const NetworkSpec spec = nb.take();
                 Model model(spec, comm, Strategy::sample_parallel(2, 1));
                 model.set_input(0, Tensor<float>(Shape4{1, 1, 4, 4}));
                 model.forward();
                 model.backward();
               }),
               Error);
}

TEST(Model, ParameterCountResNetStyleBlock) {
  comm::World world(1);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{1, 4, 8, 8});
    nb.conv("c", in, 8, 3);  // 8*4*3*3 weights
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1));
    EXPECT_EQ(model.num_parameters(), 8 * 4 * 3 * 3);
  });
}

TEST(Model, ActivationBytesScaleDownWithSpatialParallelism) {
  // The core memory argument of the paper: spatial decomposition reduces
  // per-rank activation memory, which sample parallelism cannot.
  std::int64_t serial_bytes = 0, spatial_bytes = 0;
  {
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{1, 4, 32, 32});
      nb.conv_bn_relu("b", in, 8, 3);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1));
      serial_bytes = model.activation_bytes();
    });
  }
  {
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{1, 4, 32, 32});
      nb.conv_bn_relu("b", in, 8, 3);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm,
                  Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}));
      if (comm.rank() == 0) spatial_bytes = model.activation_bytes();
    });
  }
  EXPECT_LT(spatial_bytes, serial_bytes / 2);
  EXPECT_GT(spatial_bytes, serial_bytes / 8);  // halo overhead keeps it > 1/4
}

TEST(Model, GatherOutputReassembles) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 1, 8, 8});
    nb.relu("r", in);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}));
    Tensor<float> input(Shape4{2, 1, 8, 8});
    Rng rng(2);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    const Tensor<float> out = model.gather_output(1);
    for (std::int64_t i = 0; i < out.size(); ++i) {
      ASSERT_FLOAT_EQ(out.data()[i], std::max(0.0f, input.data()[i]));
    }
  });
}

}  // namespace
}  // namespace distconv::core
