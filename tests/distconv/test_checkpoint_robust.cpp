// Crash-safe checkpoint format v3: CRC-sealed sections over the v2 layout,
// validation before mutation (every truncation and bit flip is a typed
// CheckpointCorruptError), legacy v1/v2 loads, atomic file replacement and
// the snapshot manager's corrupt-skipping recovery scan.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "core/snapshots.hpp"
#include "support/atomic_file.hpp"

namespace distconv::core {
namespace {

NetworkSpec tiny_bn_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{2, 2, 8, 8});
  int x = nb.conv_bn_relu("b1", in, 4, 3);
  nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

void train_one_step(Model& model, std::uint64_t seed) {
  Tensor<float> input(model.rt(0).out_shape);
  Rng rng(seed);
  input.fill_uniform(rng, -1.0f, 1.0f);
  model.set_input(0, input);
  model.forward();
  Tensor<float> targets(model.rt(model.output_layer()).out_shape);
  Rng trng(seed ^ 0xfeedull);
  for (std::int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = trng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  model.loss_bce(targets);
  model.backward();
  model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
}

/// A trained single-rank model's serialized v3 checkpoint (momentum and BN
/// buffers populated, so all three CRC sections are non-trivial).
std::string trained_blob() {
  std::string blob;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_one_step(model, 11);
    train_one_step(model, 12);
    blob = serialize_checkpoint(model);
  });
  return blob;
}

TEST(CheckpointV3, StreamCarriesVersionAndTrailer) {
  const std::string blob = trained_blob();
  ASSERT_GE(blob.size(), 28u);
  EXPECT_EQ(blob.compare(0, 4, "DCKP"), 0);
  std::uint32_t version = 0;
  std::memcpy(&version, blob.data() + 4, sizeof(version));
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(blob.compare(blob.size() - 16, 4, "DCRC"), 0);
  validate_checkpoint_blob(blob);  // the pristine stream is valid
}

TEST(CheckpointV3, RoundTripRestoresBitwise) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model trained(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_one_step(trained, 21);
    std::ostringstream out;
    save_checkpoint(trained, out);

    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 1), 99);
    std::istringstream in(out.str());
    load_checkpoint(restored, in);
    // Re-serialization is byte-identical: params, buffers and momentum all
    // round-tripped exactly.
    EXPECT_EQ(serialize_checkpoint(restored), out.str());
  });
}

TEST(CheckpointV3, EverySingleByteTruncationIsCorrupt) {
  const std::string blob = trained_blob();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(validate_checkpoint_blob(blob.substr(0, len)),
                 CheckpointCorruptError)
        << "truncation to " << len << " of " << blob.size()
        << " bytes slipped through";
  }
}

TEST(CheckpointV3, EveryDeterministicBitFlipIsCorrupt) {
  std::string blob = trained_blob();
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    const char flip = static_cast<char>(1u << (pos % 8));
    blob[pos] ^= flip;
    EXPECT_THROW(validate_checkpoint_blob(blob), CheckpointCorruptError)
        << "bit flip at byte " << pos << " slipped through";
    blob[pos] ^= flip;  // restore
  }
  validate_checkpoint_blob(blob);  // restored stream is pristine again
}

TEST(CheckpointV3, TrailingGarbageAfterTrailerIsCorrupt) {
  std::string blob = trained_blob();
  blob.push_back('\0');
  EXPECT_THROW(validate_checkpoint_blob(blob), CheckpointCorruptError);
}

TEST(CheckpointV3, VersionDowngradeWithTrailerIsCorrupt) {
  // A v3 stream whose version field claims v2 has 16 unexplained bytes at
  // the end: the strict-length walk must reject it, not silently load it.
  std::string blob = trained_blob();
  const std::uint32_t v2 = 2;
  std::memcpy(blob.data() + 4, &v2, sizeof(v2));
  EXPECT_THROW(validate_checkpoint_blob(blob), CheckpointCorruptError);
}

TEST(CheckpointV3, LegacyV2StreamStillLoads) {
  // Stripping the trailer and downgrading the version field reconstructs
  // the exact v2 byte stream; it must validate and restore bitwise.
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model trained(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_one_step(trained, 31);
    std::string v2 = serialize_checkpoint(trained);
    v2.resize(v2.size() - 16);
    const std::uint32_t two = 2;
    std::memcpy(v2.data() + 4, &two, sizeof(two));
    validate_checkpoint_blob(v2);

    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 1), 99);
    std::istringstream in(v2);
    load_checkpoint(restored, in);
    std::string again = serialize_checkpoint(restored);
    again.resize(again.size() - 16);
    std::memcpy(again.data() + 4, &two, sizeof(two));
    EXPECT_EQ(again, v2);
  });
}

TEST(CheckpointV3, LegacyV1StreamStillLoadsWithBufferReset) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model trained(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_one_step(trained, 41);

    // Serialize in the historical v1 layout (no buffer section).
    std::ostringstream out;
    auto pod = [&out](const auto& v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    auto tensor = [&](const Tensor<float>& t) {
      for (int d = 0; d < 4; ++d) pod(static_cast<std::int64_t>(t.shape()[d]));
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    };
    out.write("DCKP", 4);
    pod(std::uint32_t{1});
    pod(static_cast<std::uint32_t>(trained.num_layers()));
    for (int i = 0; i < trained.num_layers(); ++i) {
      pod(static_cast<std::uint32_t>(trained.rt(i).params.size()));
      for (const auto& p : trained.rt(i).params) tensor(p);
    }
    pod(std::uint8_t{0});  // no momentum section
    const std::string v1 = out.str();
    validate_checkpoint_blob(v1);
    // v1 with trailing garbage is rejected just like v2/v3.
    EXPECT_THROW(validate_checkpoint_blob(v1 + "x"), CheckpointCorruptError);

    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 1), 99);
    train_one_step(restored, 42);  // dirty the running stats
    std::istringstream in(v1);
    load_checkpoint(restored, in);
    for (int i = 0; i < trained.num_layers(); ++i) {
      for (std::size_t k = 0; k < trained.rt(i).params.size(); ++k) {
        const auto& a = trained.rt(i).params[k];
        const auto& b = restored.rt(i).params[k];
        for (std::int64_t j = 0; j < a.size(); ++j) {
          ASSERT_EQ(a.data()[j], b.data()[j]);
        }
      }
    }
    // BN buffers were reset to their fresh state (update counter zeroed).
    const auto& bn_rt = restored.rt(2);
    ASSERT_EQ(bn_rt.buffers.size(), 3u);
    EXPECT_EQ(bn_rt.buffers[2].data()[0], 0.0f);
  });
}

TEST(CheckpointV3, CorruptLoadLeavesModelUntouched) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_one_step(model, 51);
    const std::string before = serialize_checkpoint(model);

    std::string corrupt = before;
    corrupt[before.size() / 2] ^= 0x10;
    std::istringstream in(corrupt);
    EXPECT_THROW(load_checkpoint(model, in), CheckpointCorruptError);
    // Validation failed before any mutation: the model is bitwise intact.
    EXPECT_EQ(serialize_checkpoint(model), before);
  });
}

TEST(AtomicFile, WriteReplacesWithoutLeavingTemp) {
  const std::string path = "/tmp/distconv_atomic_file_test.bin";
  support::write_file_atomic(path, std::string("first"));
  support::write_file_atomic(path, std::string("second"));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  // The scratch name is pid-qualified (concurrent writers must not share
  // one), so sweep the whole pattern rather than a fixed ".tmp".
  for (const auto& entry : std::filesystem::directory_iterator("/tmp")) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp"), std::string::npos)
        << "stray scratch file " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(Snapshots, RetentionKeepsNewestAndScanSkipsCorrupt) {
  const std::string dir = "/tmp/distconv_snapshot_scan_test";
  std::filesystem::remove_all(dir);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = tiny_bn_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 7);
    SnapshotOptions opts;
    opts.dir = dir;
    opts.every = 1;
    opts.keep = 2;
    SnapshotManager snaps(model, opts);
    snaps.save(0);
    snaps.save(1);
    snaps.save(2);
    comm::barrier(comm);
    // Retention pruned the oldest.
    EXPECT_FALSE(std::filesystem::exists(snaps.path_for_step(0)));
    EXPECT_TRUE(std::filesystem::exists(snaps.path_for_step(1)));
    EXPECT_TRUE(std::filesystem::exists(snaps.path_for_step(2)));
    EXPECT_EQ(snaps.newest_valid_step(), 2);
    comm::barrier(comm);  // both ranks done scanning before the tear below

    // Tear the newest snapshot (a crash mid-write): the scan must fall back
    // to the previous one instead of loading garbage.
    if (comm.rank() == 0) {
      std::ifstream in(snaps.path_for_step(2), std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      in.close();
      bytes.resize(bytes.size() / 2);
      std::ofstream out(snaps.path_for_step(2),
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    comm::barrier(comm);
    EXPECT_EQ(snaps.newest_valid_step(), 1);
    EXPECT_EQ(snaps.restore_latest(), 1);
  });
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace distconv::core
