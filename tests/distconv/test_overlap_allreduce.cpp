// Overlapped gradient allreduce vs the blocking sweep: training must be
// bitwise identical under every strategy (sample, hybrid spatial,
// channel-parallel), every intra-rank thread budget, and micro-batch
// accumulation — the determinism contract of the per-layer completion
// engine (fixed reduction order inside each op).
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <vector>

#include "core/layers.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "tests/support/thread_guard.hpp"

namespace distconv::core {
namespace {

NetworkSpec small_net(const Shape4& in_shape) {
  NetworkBuilder nb;
  const int in = nb.input(in_shape);
  int x = nb.conv_bn_relu("b1", in, 8, 3, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3, 1);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

/// Every parameter tensor of every layer, flattened (replicated, so any
/// rank's copy represents the model).
std::vector<float> snapshot_params(const Model& model) {
  std::vector<float> out;
  for (int i = 0; i < model.num_layers(); ++i) {
    for (const auto& p : model.rt(i).params) {
      out.insert(out.end(), p.data(), p.data() + p.size());
    }
  }
  return out;
}

/// Train `steps` full steps on a fixed dataset; returns rank 0's parameter
/// snapshot.
std::vector<float> train(const NetworkSpec& spec, comm::Comm& comm,
                         const Strategy& strategy, bool overlap, int steps,
                         int micro_batches,
                         comm::ProgressMode progress = comm::ProgressMode::kOff) {
  ModelOptions opts;
  opts.overlap_allreduce = overlap;
  opts.comm_progress = progress;
  Model model(spec, comm, strategy, /*seed=*/11, opts);
  Trainer trainer(model, [&] {
    TrainerOptions t;
    t.sgd = kernels::SgdConfig{0.05f, 0.9f, 0.0f};
    t.micro_batches = micro_batches;
    return t;
  }());

  const Shape4 micro_in = model.rt(0).out_shape;
  const Shape4 micro_out = model.rt(model.output_layer()).out_shape;
  Tensor<float> input(Shape4{micro_in.n * micro_batches, micro_in.c, micro_in.h,
                             micro_in.w});
  Tensor<float> targets(Shape4{micro_out.n * micro_batches, micro_out.c,
                               micro_out.h, micro_out.w});
  Rng rng(21);
  input.fill_uniform(rng);
  for (std::int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = (i % 3 == 0) ? 1.0f : 0.0f;
  }
  for (int s = 0; s < steps; ++s) trainer.step_bce(input, targets);
  return snapshot_params(model);
}

void expect_bitwise(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

struct Case {
  const char* name;
  int ranks;
  Strategy (*make)(int layers, int ranks);
};

const Case kCases[] = {
    {"sample", 4,
     [](int layers, int p) { return Strategy::sample_parallel(layers, p); }},
    {"hybrid-spatial", 4,
     [](int layers, int p) { return Strategy::hybrid(layers, p, 4); }},
    {"channel", 4,
     [](int layers, int p) { return Strategy::channel_parallel(layers, p, 2); }},
    // Spatial early / channel-parallel deep layers: forward and backward
    // shuffles redistribute between the grids, so the engine's pre-posted
    // ShuffleOps, halo refreshes AND the channel forward's reduce-scatter
    // are all on the line in one case.
    {"mixed-spatial-channel", 4,
     [](int layers, int) {
       Strategy s = Strategy::uniform(layers, ProcessGrid{1, 1, 2, 2});
       for (int i = layers / 2; i < layers; ++i) {
         s.grids[i] = ProcessGrid{2, 2, 1, 1};
       }
       return s;
     }},
};

/// Every progress mode × every strategy × serial and contended thread
/// budgets: training with the engine overlapping gradient allreduces, halo
/// refreshes, shuffles and the channel-parallel reduce-scatter must be
/// bitwise identical to the fully blocking baseline.
TEST(OverlapAllreduce, BitwiseEqualAcrossStrategiesThreadsAndProgressModes) {
  const Shape4 in_shape{4, 2, 16, 16};
  const NetworkSpec spec = small_net(in_shape);
  const comm::ProgressMode modes[] = {comm::ProgressMode::kOff,
                                      comm::ProgressMode::kThread,
                                      comm::ProgressMode::kHooks};
  for (const auto& c : kCases) {
    for (const int threads : {1, 8}) {
      parallel::ThreadGuard guard(threads);
      std::vector<float> blocking;
      std::vector<std::vector<float>> overlapped(std::size(modes));
      comm::World world(c.ranks);
      world.run([&](comm::Comm& comm) {
        const Strategy strategy = c.make(spec.size(), c.ranks);
        auto b = train(spec, comm, strategy, /*overlap=*/false, /*steps=*/3,
                       /*micro_batches=*/1, comm::ProgressMode::kOff);
        std::vector<std::vector<float>> o(std::size(modes));
        for (std::size_t m = 0; m < std::size(modes); ++m) {
          o[m] = train(spec, comm, strategy, /*overlap=*/true, /*steps=*/3,
                       /*micro_batches=*/1, modes[m]);
        }
        if (comm.rank() == 0) {
          blocking = std::move(b);
          overlapped = std::move(o);
        }
      });
      for (std::size_t m = 0; m < std::size(modes); ++m) {
        SCOPED_TRACE(std::string(c.name) + " threads=" + std::to_string(threads) +
                     " progress=" + comm::to_string(modes[m]));
        expect_bitwise(blocking, overlapped[m], c.name);
      }
    }
  }
}

TEST(OverlapAllreduce, BitwiseEqualUnderMicroBatchAccumulation) {
  const Shape4 in_shape{2, 2, 16, 16};
  const NetworkSpec spec = small_net(in_shape);
  for (const auto& c : kCases) {
    std::vector<float> blocking, overlapped;
    comm::World world(c.ranks);
    world.run([&](comm::Comm& comm) {
      const Strategy strategy = c.make(spec.size(), c.ranks);
      auto b = train(spec, comm, strategy, /*overlap=*/false, /*steps=*/2,
                     /*micro_batches=*/3);
      // Accumulation steps defer the gradient sums while the progress
      // thread still drives the per-micro-batch shuffle/halo/rs ops.
      auto o = train(spec, comm, strategy, /*overlap=*/true, /*steps=*/2,
                     /*micro_batches=*/3, comm::ProgressMode::kThread);
      if (comm.rank() == 0) {
        blocking = std::move(b);
        overlapped = std::move(o);
      }
    });
    SCOPED_TRACE(c.name);
    expect_bitwise(blocking, overlapped, c.name);
  }
}

/// The plain one-argument backward() also rides the engine when the option
/// is on, and exposes the drain-time metric.
TEST(OverlapAllreduce, PlainBackwardCompletesGradients) {
  const Shape4 in_shape{4, 2, 8, 8};
  const NetworkSpec spec = small_net(in_shape);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    ModelOptions opts;
    opts.overlap_allreduce = true;
    Model overlap_model(spec, comm, Strategy::sample_parallel(spec.size(), 2),
                        5, opts);
    Model block_model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 5);
    Tensor<float> input(in_shape);
    Tensor<float> targets(overlap_model.rt(overlap_model.output_layer()).out_shape);
    Rng rng(9);
    input.fill_uniform(rng);
    Rng trng(10);
    targets.fill_uniform(trng, 0.0f, 1.0f);
    for (Model* m : {&overlap_model, &block_model}) {
      m->set_input(0, input);
      m->forward();
      m->loss_bce(targets);
      m->backward();
    }
    EXPECT_GE(overlap_model.last_grad_completion_seconds(), 0.0);
    for (int i = 0; i < overlap_model.num_layers(); ++i) {
      const auto& og = overlap_model.rt(i).grads;
      const auto& bg = block_model.rt(i).grads;
      ASSERT_EQ(og.size(), bg.size());
      for (std::size_t k = 0; k < og.size(); ++k) {
        EXPECT_EQ(0, std::memcmp(og[k].data(), bg[k].data(),
                                 static_cast<std::size_t>(og[k].size()) *
                                     sizeof(float)))
            << "layer " << i << " grad " << k;
      }
    }
  });
}

}  // namespace
}  // namespace distconv::core
