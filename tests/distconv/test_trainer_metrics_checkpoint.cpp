#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"

namespace distconv::core {
namespace {

NetworkSpec bn_free_net(const Shape4& in_shape) {
  NetworkBuilder nb;
  const int in = nb.input(in_shape);
  int x = nb.conv("c1", in, 4, 3, 1);
  x = nb.relu("r1", x);
  x = nb.conv("head", x, 1, 1, 1, 0, true);
  return nb.take();
}

std::vector<Tensor<float>> snapshot_params(Model& model) {
  std::vector<Tensor<float>> out;
  for (int i = 0; i < model.num_layers(); ++i) {
    for (const auto& p : model.rt(i).params) out.push_back(p);
  }
  return out;
}

TEST(Trainer, MicroBatchingMatchesFullBatchWithoutBN) {
  // Without batchnorm, splitting a mini-batch into micro-batches with
  // gradient accumulation computes the *same* gradients (up to accumulation
  // order) as one full-batch step.
  const Shape4 full_shape{8, 2, 12, 12};
  Tensor<float> input(full_shape);
  Rng rng(3);
  input.fill_uniform(rng);
  Tensor<float> targets(Shape4{8, 1, 12, 12});
  Rng trng(4);
  for (std::int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = trng.uniform() < 0.5 ? 0.0f : 1.0f;
  }

  auto run = [&](int micro_batches) {
    std::vector<Tensor<float>> params;
    comm::World world(2);
    world.run([&](comm::Comm& comm) {
      const Shape4 micro{full_shape.n / micro_batches, full_shape.c,
                         full_shape.h, full_shape.w};
      const NetworkSpec spec = bn_free_net(micro);
      Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 13);
      TrainerOptions options;
      options.micro_batches = micro_batches;
      options.sgd = kernels::SgdConfig{0.1f, 0.0f, 0.0f};
      Trainer trainer(model, options);
      trainer.step_bce(input, targets);
      auto snap = snapshot_params(model);
      if (comm.rank() == 0) params = std::move(snap);
    });
    return params;
  };

  const auto full = run(1);
  const auto micro2 = run(2);
  const auto micro4 = run(4);
  ASSERT_EQ(full.size(), micro2.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (std::int64_t j = 0; j < full[i].size(); ++j) {
      ASSERT_NEAR(micro2[i].data()[j], full[i].data()[j], 1e-5f) << i;
      ASSERT_NEAR(micro4[i].data()[j], full[i].data()[j], 1e-5f) << i;
    }
  }
}

TEST(Trainer, SoftmaxStepRuns) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{2, 1, 8, 8});
    int x = nb.conv("c", in, 4, 3, 1);
    x = nb.global_avg_pool("gap", x);
    x = nb.fully_connected("fc", x, 3);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 2);
    Trainer trainer(model, TrainerOptions{{0.1f, 0.0f, 0.0f}, 2});
    Tensor<float> input(Shape4{4, 1, 8, 8});
    Rng rng(5);
    input.fill_uniform(rng);
    const double loss = trainer.step_softmax(input, {0, 1, 2, 0});
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0);
  });
}

TEST(Trainer, BatchSizeMismatchThrows) {
  comm::World world(1);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 const NetworkSpec spec = bn_free_net(Shape4{2, 2, 8, 8});
                 Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1));
                 Trainer trainer(model, TrainerOptions{{0.1f, 0.0f, 0.0f}, 2});
                 Tensor<float> wrong(Shape4{2, 2, 8, 8});  // needs 4 samples
                 Tensor<float> targets(Shape4{4, 1, 8, 8});
                 trainer.step_bce(wrong, targets);
               }),
               Error);
}

TEST(Metrics, SegmentationCountsAreExact) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{1, 1, 8, 8});
    nb.relu("r", in);  // identity on positive, zero on negative
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}));
    // Logits: left half +1, right half -1 (ReLU clamps to 0 → "negative"
    // prediction since threshold is > 0).
    Tensor<float> input(Shape4{1, 1, 8, 8});
    Tensor<float> targets(Shape4{1, 1, 8, 8});
    for (std::int64_t h = 0; h < 8; ++h) {
      for (std::int64_t w = 0; w < 8; ++w) {
        input(0, 0, h, w) = w < 4 ? 1.0f : -1.0f;
        targets(0, 0, h, w) = (w < 2) ? 1.0f : 0.0f;  // only half of the
                                                      // positives are true
      }
    }
    model.set_input(0, input);
    model.forward();
    const auto m = evaluate_segmentation(model, 1, targets);
    EXPECT_EQ(m.pixels, 64);
    EXPECT_DOUBLE_EQ(m.positive_rate, 0.5);   // predicted positive: w<4
    EXPECT_DOUBLE_EQ(m.iou, 0.5);             // intersection 16 / union 32
    EXPECT_DOUBLE_EQ(m.pixel_accuracy, 0.75);  // 16 FP, rest correct
  });
}

TEST(Metrics, Top1CountsAcrossRanks) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{4, 3, 1, 1});
    nb.relu("logits", in);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2));
    Tensor<float> input(Shape4{4, 3, 1, 1});
    // argmax classes: 2, 0, 1, 1
    const float vals[4][3] = {
        {0.1f, 0.2f, 0.9f}, {0.8f, 0.1f, 0.2f}, {0.1f, 0.7f, 0.2f},
        {0.2f, 0.9f, 0.1f}};
    for (int n = 0; n < 4; ++n)
      for (int c = 0; c < 3; ++c) input(n, c, 0, 0) = vals[n][c];
    model.set_input(0, input);
    model.forward();
    EXPECT_DOUBLE_EQ(evaluate_top1(model, 1, {2, 0, 1, 1}), 1.0);
    EXPECT_DOUBLE_EQ(evaluate_top1(model, 1, {2, 0, 0, 0}), 0.5);
  });
}

TEST(Checkpoint, RoundTripRestoresExactly) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    const NetworkSpec spec = bn_free_net(Shape4{2, 2, 8, 8});
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 31);
    // Train one step so velocity exists too.
    Tensor<float> input(Shape4{2, 2, 8, 8});
    Rng rng(1);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    model.loss_bce(targets);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.1f, 0.9f, 0.0f});

    std::ostringstream out;
    save_checkpoint(model, out);
    const std::string blob = out.str();

    // Construct a fresh model with a different seed and restore.
    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 2), 99);
    std::istringstream in(blob);
    load_checkpoint(restored, in);
    for (int i = 0; i < model.num_layers(); ++i) {
      ASSERT_EQ(model.rt(i).params.size(), restored.rt(i).params.size());
      for (std::size_t k = 0; k < model.rt(i).params.size(); ++k) {
        const auto& a = model.rt(i).params[k];
        const auto& b = restored.rt(i).params[k];
        for (std::int64_t j = 0; j < a.size(); ++j) {
          ASSERT_EQ(a.data()[j], b.data()[j]);
        }
      }
      for (std::size_t k = 0; k < model.rt(i).velocity.size(); ++k) {
        const auto& a = model.rt(i).velocity[k];
        const auto& b = restored.rt(i).velocity[k];
        for (std::int64_t j = 0; j < a.size(); ++j) {
          ASSERT_EQ(a.data()[j], b.data()[j]);
        }
      }
    }
  });
}

TEST(Checkpoint, PortableAcrossStrategies) {
  // Save under sample parallelism, restore under a spatial strategy: the
  // restored model must produce the same outputs (weights are
  // strategy-independent).
  const Shape4 in_shape{2, 2, 8, 8};
  Tensor<float> input(in_shape);
  Rng rng(8);
  input.fill_uniform(rng);

  std::string blob;
  Tensor<float> reference;
  {
    comm::World world(2);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = bn_free_net(in_shape);
      Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 44);
      model.set_input(0, input);
      model.forward();
      Tensor<float> out = model.gather_output(model.output_layer());
      if (comm.rank() == 0) {
        std::ostringstream os;
        save_checkpoint(model, os);
        blob = os.str();
        reference = std::move(out);
      }
    });
  }
  {
    comm::World world(4);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = bn_free_net(in_shape);
      Model model(spec, comm,
                  Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}), 77);
      std::istringstream is(blob);
      load_checkpoint(model, is);
      model.set_input(0, input);
      model.forward();
      const Tensor<float> out = model.gather_output(model.output_layer());
      if (comm.rank() == 0) {
        for (std::int64_t i = 0; i < out.size(); ++i) {
          ASSERT_NEAR(out.data()[i], reference.data()[i], 1e-5f);
        }
      }
    });
  }
}

TEST(Checkpoint, FileRoundTripCollective) {
  const std::string path = "/tmp/distconv_ckpt_test.bin";
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = bn_free_net(Shape4{2, 2, 8, 8});
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 3);
    save_checkpoint_file(model, path);
    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 2), 4);
    load_checkpoint_file(restored, path);
    for (std::int64_t j = 0; j < model.rt(1).params[0].size(); ++j) {
      ASSERT_EQ(restored.rt(1).params[0].data()[j],
                model.rt(1).params[0].data()[j]);
    }
  });
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptStreamThrows) {
  comm::World world(1);
  EXPECT_THROW(world.run([](comm::Comm& comm) {
                 const NetworkSpec spec = bn_free_net(Shape4{1, 1, 4, 4});
                 Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1));
                 std::istringstream in("not a checkpoint at all");
                 load_checkpoint(model, in);
               }),
               Error);
}

}  // namespace
}  // namespace distconv::core
