// Checkpoint format v2: round-trips batchnorm running statistics (and
// momentum) bitwise, and still loads v1 streams — buffers reset to their
// fresh state so eval-mode forward falls back to batch statistics.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"

namespace distconv::core {
namespace {

NetworkSpec bn_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 12, 12});
  int x = nb.conv_bn_relu("b1", in, 6, 3);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xfeedull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

void train_steps(Model& model, int steps) {
  const Shape4 in_shape = model.rt(0).out_shape;
  const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
  for (int s = 0; s < steps; ++s) {
    model.set_input(0, make_input(in_shape, 10 + s));
    model.forward();
    model.loss_bce(make_targets(out_shape, 20 + s));
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
  }
}

/// Serialize `model` in the historical v1 layout (no buffer section) — the
/// byte stream a pre-v2 build would have written.
std::string write_v1_blob(const Model& model) {
  std::ostringstream out;
  auto pod = [&out](const auto& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto tensor = [&](const Tensor<float>& t) {
    for (int d = 0; d < 4; ++d) pod(static_cast<std::int64_t>(t.shape()[d]));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  };
  out.write("DCKP", 4);
  pod(std::uint32_t{1});
  pod(static_cast<std::uint32_t>(model.num_layers()));
  bool any_velocity = false;
  for (int i = 0; i < model.num_layers(); ++i) {
    const auto& rt = model.rt(i);
    pod(static_cast<std::uint32_t>(rt.params.size()));
    for (const auto& p : rt.params) tensor(p);
    any_velocity = any_velocity || !rt.velocity.empty();
  }
  pod(std::uint8_t{any_velocity ? std::uint8_t{1} : std::uint8_t{0}});
  if (any_velocity) {
    for (int i = 0; i < model.num_layers(); ++i) {
      const auto& rt = model.rt(i);
      pod(static_cast<std::uint32_t>(rt.velocity.size()));
      for (const auto& v : rt.velocity) tensor(v);
    }
  }
  return out.str();
}

void expect_tensors_equal(const Tensor<float>& a, const Tensor<float>& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " at " << i;
  }
}

TEST(CheckpointV2, RoundTripsRunningStatsAndMomentumBitwise) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = bn_net();
    Model trained(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_steps(trained, 3);
    ASSERT_GT(trained.rt(2).buffers[2].data()[0], 0.0f);  // b1_bn tracked

    std::ostringstream out;
    save_checkpoint(trained, out);
    const std::string blob = out.str();
    // The stream advertises version 2.
    std::uint32_t version = 0;
    std::memcpy(&version, blob.data() + 4, sizeof(version));
    EXPECT_EQ(version, kCheckpointVersion);

    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 1), 99);
    std::istringstream in(blob);
    load_checkpoint(restored, in);
    for (int i = 0; i < spec.size(); ++i) {
      ASSERT_EQ(restored.rt(i).params.size(), trained.rt(i).params.size());
      for (std::size_t k = 0; k < trained.rt(i).params.size(); ++k) {
        expect_tensors_equal(restored.rt(i).params[k], trained.rt(i).params[k],
                             "param");
      }
      ASSERT_EQ(restored.rt(i).buffers.size(), trained.rt(i).buffers.size());
      for (std::size_t k = 0; k < trained.rt(i).buffers.size(); ++k) {
        expect_tensors_equal(restored.rt(i).buffers[k],
                             trained.rt(i).buffers[k], "buffer");
      }
      ASSERT_EQ(restored.rt(i).velocity.size(), trained.rt(i).velocity.size());
      for (std::size_t k = 0; k < trained.rt(i).velocity.size(); ++k) {
        expect_tensors_equal(restored.rt(i).velocity[k],
                             trained.rt(i).velocity[k], "velocity");
      }
    }

    // Eval forward of the restored model is bitwise the trained model's.
    const Tensor<float> x = make_input(trained.rt(0).out_shape, 777);
    trained.set_input(0, x);
    trained.forward(Mode::kInference);
    restored.set_input(0, x);
    restored.forward(Mode::kInference);
    expect_tensors_equal(restored.gather_output(restored.output_layer()),
                         trained.gather_output(trained.output_layer()),
                         "eval output");
  });
}

TEST(CheckpointV2, V1StreamLoadsWithBatchStatFallback) {
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = bn_net();
    Model trained(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    train_steps(trained, 3);
    const std::string v1 = write_v1_blob(trained);

    // Load into a model whose buffers hold stale statistics: the v1 load
    // must restore the parameters and reset the buffers to fresh.
    Model restored(spec, comm, Strategy::sample_parallel(spec.size(), 1), 99);
    train_steps(restored, 1);  // dirty the running stats
    std::istringstream in(v1);
    load_checkpoint(restored, in);

    for (int i = 0; i < spec.size(); ++i) {
      for (std::size_t k = 0; k < trained.rt(i).params.size(); ++k) {
        expect_tensors_equal(restored.rt(i).params[k], trained.rt(i).params[k],
                             "param");
      }
    }
    const auto& bn_rt = restored.rt(2);  // b1_bn
    ASSERT_EQ(bn_rt.buffers.size(), 3u);
    EXPECT_EQ(bn_rt.buffers[2].data()[0], 0.0f);  // counter reset
    for (std::int64_t c = 0; c < bn_rt.buffers[0].size(); ++c) {
      EXPECT_EQ(bn_rt.buffers[0].data()[c], 0.0f);  // fresh mean
      EXPECT_EQ(bn_rt.buffers[1].data()[c], 1.0f);  // fresh variance
    }

    // Without running stats, eval-mode forward falls back to batch
    // statistics: identical to a training-mode forward's output.
    const Tensor<float> x = make_input(restored.rt(0).out_shape, 555);
    restored.set_input(0, x);
    restored.forward(Mode::kInference);
    const Tensor<float> eval_out =
        restored.gather_output(restored.output_layer());
    restored.set_input(0, x);
    restored.forward(Mode::kTraining);
    expect_tensors_equal(eval_out,
                         restored.gather_output(restored.output_layer()),
                         "fallback output");
  });
}

TEST(CheckpointV2, RejectsUnknownVersion) {
  comm::World world(1);
  EXPECT_THROW(
      world.run([&](comm::Comm& comm) {
        const NetworkSpec spec = bn_net();
        Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
        std::string blob;
        {
          std::ostringstream out;
          save_checkpoint(model, out);
          blob = out.str();
        }
        const std::uint32_t bad = 99;
        std::memcpy(blob.data() + 4, &bad, sizeof(bad));
        std::istringstream in(blob);
        load_checkpoint(model, in);
      }),
      Error);
}

TEST(CheckpointV2, FileRoundTripBroadcastsToAllRanks) {
  const std::string path = "checkpoint_v2_test.ckpt";
  std::string expect_blob;
  {
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = bn_net();
      Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
      train_steps(model, 2);
      save_checkpoint_file(model, path);
      std::ostringstream out;
      save_checkpoint(model, out);
      expect_blob = out.str();
    });
  }
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = bn_net();
    Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), 3);
    load_checkpoint_file(model, path);
    // Every rank's restored state re-serializes to the original bytes.
    std::ostringstream out;
    save_checkpoint(model, out);
    ASSERT_EQ(out.str(), expect_blob) << "rank " << comm.rank();
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distconv::core
