// The end-to-end evaluation overloads: evaluate_segmentation / evaluate_top1
// taking a global input run the forward pass themselves, default to
// Mode::kInference (so batchnorm uses tracked running statistics and no
// training state mutates), and agree exactly with the manual
// set_input + forward + layer-scorer sequence.
#include <gtest/gtest.h>

#include <vector>

#include "core/layers.hpp"
#include "core/metrics.hpp"
#include "core/model.hpp"

namespace distconv::core {
namespace {

Tensor<float> make_input(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> make_targets(const Shape4& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Rng rng(seed ^ 0xb0beull);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

NetworkSpec small_conv_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 3, 16, 16});
  int x = nb.conv("c1", in, 6, 3, 1);
  x = nb.batchnorm("bn1", x, BatchNormMode::kGlobal);
  x = nb.relu("r1", x);
  x = nb.conv("c2", x, 8, 5, 2);
  x = nb.relu("r2", x);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

TEST(EvalInference, SegmentationOverloadMatchesManualInferenceForward) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const NetworkSpec spec = small_conv_net();
    Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 2), /*seed=*/7);
    const Shape4 in_shape = model.rt(0).out_shape;
    const Shape4 out_shape = model.rt(model.output_layer()).out_shape;
    // Two training steps give batchnorm real running statistics, so the
    // inference and training normalizations genuinely differ.
    for (int s = 0; s < 2; ++s) {
      model.set_input(0, make_input(in_shape, 100 + s));
      model.forward();
      model.loss_bce(make_targets(out_shape, 200 + s));
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }

    const Tensor<float> eval_input = make_input(in_shape, 999);
    const Tensor<float> eval_targets = make_targets(out_shape, 888);

    model.set_input(0, eval_input);
    model.forward(Mode::kInference);
    const SegmentationMetrics manual =
        evaluate_segmentation(model, model.output_layer(), eval_targets);

    // "bn1" is layer 2; buffers[2] counts tracked training forwards.
    const float tracked_before = model.rt(2).buffers[2].data()[0];
    const SegmentationMetrics viaOverload =
        evaluate_segmentation(model, eval_input, eval_targets);
    EXPECT_EQ(model.mode(), Mode::kInference);
    // The default-inference overload must not track running statistics.
    EXPECT_EQ(model.rt(2).buffers[2].data()[0], tracked_before);

    EXPECT_EQ(viaOverload.pixels, manual.pixels);
    EXPECT_DOUBLE_EQ(viaOverload.pixel_accuracy, manual.pixel_accuracy);
    EXPECT_DOUBLE_EQ(viaOverload.iou, manual.iou);
    EXPECT_DOUBLE_EQ(viaOverload.positive_rate, manual.positive_rate);

    // An explicit training-mode evaluation runs (and tracks) a training
    // forward — the mode parameter is honored.
    evaluate_segmentation(model, eval_input, eval_targets, Mode::kTraining);
    EXPECT_EQ(model.mode(), Mode::kTraining);
    EXPECT_EQ(model.rt(2).buffers[2].data()[0], tracked_before + 1.0f);
  });
}

TEST(EvalInference, Top1OverloadMatchesManualInferenceForward) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    NetworkBuilder nb;
    const int in = nb.input(Shape4{4, 3, 1, 1});
    nb.relu("logits", in);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2));
    Tensor<float> input(Shape4{4, 3, 1, 1});
    // argmax classes: 2, 0, 1, 1
    const float vals[4][3] = {{0.1f, 0.2f, 0.9f},
                              {0.8f, 0.1f, 0.2f},
                              {0.1f, 0.7f, 0.2f},
                              {0.2f, 0.9f, 0.1f}};
    for (int n = 0; n < 4; ++n)
      for (int c = 0; c < 3; ++c) input(n, c, 0, 0) = vals[n][c];

    model.set_input(0, input);
    model.forward(Mode::kInference);
    const double manual = evaluate_top1(model, 1, {2, 0, 1, 1});

    EXPECT_DOUBLE_EQ(evaluate_top1(model, input, {2, 0, 1, 1}), manual);
    EXPECT_DOUBLE_EQ(evaluate_top1(model, input, {2, 0, 1, 1}), 1.0);
    EXPECT_EQ(model.mode(), Mode::kInference);
    EXPECT_DOUBLE_EQ(evaluate_top1(model, input, {2, 0, 0, 0}), 0.5);
  });
}

}  // namespace
}  // namespace distconv::core
