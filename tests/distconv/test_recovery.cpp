// Kill-a-rank auto-recovery: a deterministically injected mid-training kill
// aborts the world on every rank, run_with_recovery resets and re-enters,
// the trainer restores the newest mutually-valid snapshot and replays the
// lost steps — and the recovered run's final weights are BITWISE identical
// to an unfaulted run, across sample/spatial/channel strategies and all
// progress-engine modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "comm/faults.hpp"
#include "comm/world.hpp"
#include "core/layers.hpp"
#include "core/recovery.hpp"
#include "core/snapshots.hpp"
#include "core/trainer.hpp"

namespace distconv::core {
namespace {

constexpr int kWorld = 4;
constexpr int kSteps = 6;
constexpr std::uint64_t kModelSeed = 17;

NetworkSpec recovery_net() {
  // Channel counts divisible by the channel-parallel ways; 3×3 convs give
  // the spatial grids real halo exchanges.
  NetworkBuilder nb;
  const int in = nb.input(Shape4{4, 4, 12, 12});
  int x = nb.conv("c1", in, 8, 3, 1);
  x = nb.relu("r1", x);
  nb.conv("head", x, 2, 3, 1);
  return nb.take();
}

Tensor<float> input_for_step(std::int64_t step) {
  Tensor<float> t(Shape4{4, 4, 12, 12});
  Rng rng(100 + static_cast<std::uint64_t>(step));
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> targets_for_step(std::int64_t step, const Shape4& shape) {
  Tensor<float> t(shape);
  Rng rng(900 + static_cast<std::uint64_t>(step));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.uniform() < 0.5 ? 0.0f : 1.0f;
  }
  return t;
}

std::vector<Tensor<float>> collect_params(Model& model) {
  std::vector<Tensor<float>> out;
  for (int i = 0; i < model.num_layers(); ++i) {
    for (const auto& p : model.rt(i).params) out.push_back(p);
  }
  return out;
}

/// One full training session: construct, restore from the newest snapshot if
/// any, train to kSteps with periodic checkpointing, and (rank 0) report the
/// final parameters. Re-entrant: exactly what the recovery driver replays.
void train_session(comm::Comm& comm, const Strategy& strategy,
                   comm::ProgressMode mode, const std::string& dir,
                   std::vector<Tensor<float>>* final_params) {
  const NetworkSpec spec = recovery_net();
  ModelOptions opts;
  opts.comm_progress = mode;
  Model model(spec, comm, strategy, kModelSeed, opts);
  Trainer trainer(model, TrainerOptions{{0.05f, 0.9f, 0.0f}, 1});
  SnapshotOptions sopts;
  sopts.dir = dir;
  sopts.every = 2;
  sopts.keep = 2;
  SnapshotManager snaps(model, sopts);
  trainer.attach_snapshots(&snaps);
  const std::int64_t restored = snaps.restore_latest();
  if (restored >= 0) trainer.set_steps_done(restored + 1);
  const Shape4 target_shape = model.rt(model.output_layer()).out_shape;
  while (trainer.steps_done() < kSteps) {
    const std::int64_t s = trainer.steps_done();
    trainer.step_bce(input_for_step(s),
                     targets_for_step(s, target_shape));
  }
  auto params = collect_params(model);
  if (comm.rank() == 0) *final_params = std::move(params);
}

std::vector<Tensor<float>> run_unfaulted(const Strategy& strategy,
                                         comm::ProgressMode mode,
                                         const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::vector<Tensor<float>> params;
  comm::World world(kWorld);
  world.run([&](comm::Comm& comm) {
    train_session(comm, strategy, mode, dir, &params);
  });
  std::filesystem::remove_all(dir);
  return params;
}

std::vector<Tensor<float>> run_faulted(const Strategy& strategy,
                                       comm::ProgressMode mode,
                                       const std::string& dir,
                                       comm::faults::FaultPlan plan,
                                       int* attempts) {
  std::filesystem::remove_all(dir);
  comm::faults::install_fault_plan(std::move(plan));
  std::vector<Tensor<float>> params;
  comm::World world(kWorld);
  const RecoveryReport report = run_with_recovery(
      world,
      [&](comm::Comm& comm) {
        train_session(comm, strategy, mode, dir, &params);
      },
      RecoveryOptions{3});
  comm::faults::clear_fault_plan();
  if (attempts != nullptr) *attempts = report.attempts;
  std::filesystem::remove_all(dir);
  return params;
}

void expect_bitwise_equal(const std::vector<Tensor<float>>& a,
                          const std::vector<Tensor<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "param " << i;
    for (std::int64_t j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i].data()[j], b[i].data()[j])
          << "param " << i << " elem " << j;
    }
  }
}

struct NamedStrategy {
  const char* name;
  Strategy strategy;
};

std::vector<NamedStrategy> strategies() {
  const int layers = recovery_net().size();
  return {
      {"sample", Strategy::sample_parallel(layers, kWorld)},
      {"spatial", Strategy::uniform(layers, ProcessGrid{1, 1, 2, 2})},
      {"channel", Strategy::channel_parallel(layers, kWorld, 2)},
  };
}

TEST(Recovery, KilledRankRecoversBitwiseAcrossStrategiesAndModes) {
  for (const NamedStrategy& s : strategies()) {
    const std::string base =
        std::string("/tmp/distconv_recovery_") + s.name;
    // One unfaulted reference per strategy (results are bitwise identical
    // across progress modes; the faulted runs below re-assert that).
    const auto reference =
        run_unfaulted(s.strategy, comm::ProgressMode::kOff, base + "_ref");
    for (const comm::ProgressMode mode :
         {comm::ProgressMode::kOff, comm::ProgressMode::kThread,
          comm::ProgressMode::kHooks}) {
      SCOPED_TRACE(std::string(s.name) + " / " +
                   comm::to_string(mode));
      int attempts = 0;
      const auto recovered = run_faulted(
          s.strategy, mode, base + "_fault",
          comm::faults::FaultPlan::kill_at_step(/*rank=*/1, /*step=*/3),
          &attempts);
      EXPECT_EQ(attempts, 2);  // one fault, one successful replay
      expect_bitwise_equal(recovered, reference);
    }
  }
}

TEST(Recovery, SeededRandomKillSweepRecoversBitwise) {
  // DC_FAULT_SEEDS widens the sweep in the scheduled CI lane; the default
  // keeps the PR/tier-1 cost at one extra run.
  std::vector<std::uint64_t> seeds{5};
  if (const char* env = std::getenv("DC_FAULT_SEEDS")) {
    seeds.clear();
    std::string text(env);
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t end = std::min(text.find(',', pos), text.size());
      const std::string tok = text.substr(pos, end - pos);
      pos = end + 1;
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
  }
  const int layers = recovery_net().size();
  const Strategy strategy = Strategy::sample_parallel(layers, kWorld);
  const auto reference = run_unfaulted(strategy, comm::ProgressMode::kThread,
                                       "/tmp/distconv_recovery_sweep_ref");
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto plan = comm::faults::FaultPlan::random_kill(
        seed, kWorld, /*max_step=*/kSteps);
    int attempts = 0;
    const auto recovered =
        run_faulted(strategy, comm::ProgressMode::kThread,
                    "/tmp/distconv_recovery_sweep", plan, &attempts);
    EXPECT_EQ(attempts, 2);
    expect_bitwise_equal(recovered, reference);
  }
}

TEST(Recovery, NonCommErrorsPropagateImmediately) {
  comm::World world(2);
  int calls = 0;
  EXPECT_THROW(run_with_recovery(world,
                                 [&](comm::Comm& comm) {
                                   if (comm.rank() == 0) {
                                     ++calls;
                                     throw Error("logic bug");
                                   }
                                   comm::barrier(comm);
                                 },
                                 RecoveryOptions{5}),
               Error);
  EXPECT_EQ(calls, 1);  // no retry for non-restartable failures
}

TEST(Recovery, AttemptsExhaustedRethrows) {
  comm::World world(2);
  int calls = 0;
  EXPECT_THROW(
      run_with_recovery(world,
                        [&](comm::Comm& comm) {
                          if (comm.rank() == 0) {
                            ++calls;
                            throw RankFailedError("persistent fault", 0);
                          }
                          comm::barrier(comm);
                        },
                        RecoveryOptions{3}),
      CommError);
  EXPECT_EQ(calls, 3);  // every allowed attempt was consumed
}

}  // namespace
}  // namespace distconv::core
