// End-to-end training behaviour: losses decrease, gradients check out
// numerically, classification heads learn separable data.
#include <gtest/gtest.h>

#include <cmath>

#include "core/layers.hpp"
#include "core/model.hpp"

namespace distconv::core {
namespace {

NetworkSpec tiny_segmentation_net(const Shape4& in_shape) {
  NetworkBuilder nb;
  const int in = nb.input(in_shape);
  int x = nb.conv_bn_relu("b1", in, 8, 3, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3, 1);
  x = nb.conv("head", x, 1, 1, 1, 0, /*bias=*/true);
  return nb.take();
}

TEST(Training, BceLossDecreasesDistributed) {
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 in_shape{4, 2, 16, 16};
    const NetworkSpec spec = tiny_segmentation_net(in_shape);
    Model model(spec, comm, Strategy::hybrid(spec.size(), 4, 4), 11);

    // Fixed dataset: targets are a deterministic function of the input
    // (left half 1, right half 0) — learnable by a small conv net.
    Tensor<float> input(in_shape);
    Rng rng(21);
    input.fill_uniform(rng);
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    for (std::int64_t n = 0; n < targets.shape().n; ++n)
      for (std::int64_t h = 0; h < targets.shape().h; ++h)
        for (std::int64_t w = 0; w < targets.shape().w; ++w)
          targets(n, 0, h, w) = w < targets.shape().w / 2 ? 1.0f : 0.0f;

    model.set_input(0, input);
    model.forward();
    const double first = model.loss_bce(targets);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.5f, 0.9f, 0.0f});
    double last = first;
    for (int step = 0; step < 30; ++step) {
      model.forward();
      last = model.loss_bce(targets);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.5f, 0.9f, 0.0f});
    }
    EXPECT_LT(last, first * 0.8) << "loss did not decrease: " << first << " → "
                                 << last;
  });
}

TEST(Training, SoftmaxHeadLearnsSeparableClasses) {
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    // 8 samples, 2 classes; class = sign of the mean of the input.
    const Shape4 in_shape{8, 1, 8, 8};
    NetworkBuilder nb;
    const int in = nb.input(in_shape);
    int x = nb.conv_bn_relu("c1", in, 4, 3, 1);
    x = nb.global_avg_pool("gap", x);
    x = nb.fully_connected("fc", x, 2);
    const NetworkSpec spec = nb.take();

    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 2), 5);
    Tensor<float> input(in_shape);
    std::vector<int> labels(in_shape.n);
    Rng rng(33);
    for (std::int64_t n = 0; n < in_shape.n; ++n) {
      const float offset = (n % 2 == 0) ? 0.5f : -0.5f;
      labels[n] = (n % 2 == 0) ? 1 : 0;
      for (std::int64_t h = 0; h < in_shape.h; ++h)
        for (std::int64_t w = 0; w < in_shape.w; ++w)
          input(n, 0, h, w) = offset + 0.1f * float(rng.normal());
    }
    model.set_input(0, input);
    model.forward();
    const double first = model.loss_softmax(labels);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.2f, 0.9f, 0.0f});
    double last = first;
    for (int step = 0; step < 20; ++step) {
      model.forward();
      last = model.loss_softmax(labels);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.2f, 0.9f, 0.0f});
    }
    EXPECT_LT(last, 0.25) << "softmax head failed to fit separable data";
  });
}

TEST(Training, EndToEndGradientNumericalCheck) {
  // dL/dw from the engine (with halo exchanges, allreduce, hybrid grids) must
  // match central finite differences of the distributed loss itself.
  comm::World world(4);
  world.run([](comm::Comm& comm) {
    const Shape4 in_shape{2, 2, 8, 8};
    NetworkBuilder nb;
    const int in = nb.input(in_shape);
    int x = nb.conv("c1", in, 4, 3, 1);
    x = nb.relu("r1", x);
    x = nb.conv("c2", x, 1, 3, 2, 1, /*bias=*/true);
    const NetworkSpec spec = nb.take();
    Model model(spec, comm, Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}),
                13);

    Tensor<float> input(in_shape);
    Rng rng(3);
    input.fill_uniform(rng);
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    Rng trng(4);
    for (std::int64_t i = 0; i < targets.size(); ++i) {
      targets.data()[i] = trng.uniform() < 0.5 ? 0.0f : 1.0f;
    }
    model.set_input(0, input);
    model.forward();
    model.loss_bce(targets);
    model.backward();

    // Snapshot analytic gradients of conv "c1" weights.
    auto& rt = model.rt(1);
    const Tensor<float>& grad = rt.grads[0];
    const float eps = 1e-2f;
    for (std::int64_t i : {0L, 11L, 29L, 60L}) {
      auto& w = rt.params[0];
      const float orig = w.data()[i];
      w.data()[i] = orig + eps;
      model.forward();
      const double lp = model.loss_bce(targets);
      w.data()[i] = orig - eps;
      model.forward();
      const double lm = model.loss_bce(targets);
      w.data()[i] = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grad.data()[i], numeric,
                  5e-3 * std::max(1.0, std::abs(numeric)))
          << "weight index " << i;
    }
  });
}

TEST(Training, BatchNormModesRunAndGlobalMatchesSpatialForOneGroup) {
  // With grid.n == 1 there is a single sample group covering the full
  // spatial domain, so kSpatial statistics equal kGlobal statistics.
  for (auto mode : {BatchNormMode::kLocal, BatchNormMode::kSpatial,
                    BatchNormMode::kGlobal}) {
    comm::World world(4);
    world.run([mode](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{2, 3, 12, 12});
      int x = nb.conv("c1", in, 4, 3, 1);
      x = nb.batchnorm("bn", x, mode);
      x = nb.conv("head", x, 1, 1, 1, 0, true);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm,
                  Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}), 17);
      Tensor<float> input(Shape4{2, 3, 12, 12});
      Rng rng(5);
      input.fill_uniform(rng);
      model.set_input(0, input);
      model.forward();
      Tensor<float> targets(model.rt(model.output_layer()).out_shape);
      const double loss = model.loss_bce(targets);
      model.backward();
      EXPECT_TRUE(std::isfinite(loss));
    });
  }

  // Equality of kSpatial and kGlobal outputs under grid.n == 1.
  auto run_mode = [](BatchNormMode mode) {
    Tensor<float> out;
    comm::World world(4);
    world.run([&, mode](comm::Comm& comm) {
      NetworkBuilder nb;
      const int in = nb.input(Shape4{2, 3, 12, 12});
      int x = nb.conv("c1", in, 4, 3, 1);
      x = nb.batchnorm("bn", x, mode);
      const NetworkSpec spec = nb.take();
      Model model(spec, comm,
                  Strategy::uniform(spec.size(), ProcessGrid{1, 1, 4, 1}), 17);
      Tensor<float> input(Shape4{2, 3, 12, 12});
      Rng rng(5);
      input.fill_uniform(rng);
      model.set_input(0, input);
      model.forward();
      Tensor<float> full = model.gather_output(model.output_layer());
      if (comm.rank() == 0) out = std::move(full);
    });
    return out;
  };
  const Tensor<float> spatial = run_mode(BatchNormMode::kSpatial);
  const Tensor<float> global = run_mode(BatchNormMode::kGlobal);
  for (std::int64_t i = 0; i < spatial.size(); ++i) {
    ASSERT_NEAR(spatial.data()[i], global.data()[i], 1e-5f);
  }
}

}  // namespace
}  // namespace distconv::core
