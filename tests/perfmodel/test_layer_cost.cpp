#include <gtest/gtest.h>

#include "perf/channel_parallel.hpp"
#include "perf/layer_cost.hpp"

namespace distconv::perf {
namespace {

const MachineModel kMachine = MachineModel::lassen();

LayerCost cost_of(const ConvLayerDesc& d, const ProcessGrid& g, int ranks) {
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  return conv_layer_cost(d, g, comm, compute, ranks);
}

TEST(ConvWork, FlopCount) {
  ConvWork w{2, 3, 8, 8, 4, 3, 3};
  EXPECT_DOUBLE_EQ(w.flops(), 2.0 * 2 * 3 * 8 * 8 * 4 * 9);
}

TEST(LayerCost, KOneHasNoHalo) {
  // res3b_branch2a: "The filter size means that no halo exchange is needed".
  ConvLayerDesc d{32, 512, 28, 28, 128, 1, 1, 0};
  const auto c = cost_of(d, ProcessGrid{1, 1, 2, 2}, 4);
  EXPECT_DOUBLE_EQ(c.fp_halo, 0.0);
  EXPECT_DOUBLE_EQ(c.bpx_halo, 0.0);
  EXPECT_DOUBLE_EQ(c.boundary_overhead, 0.0);
}

TEST(LayerCost, SampleParallelHasNoHalo) {
  ConvLayerDesc d{32, 64, 56, 56, 64, 3, 1, 1};
  const auto c = cost_of(d, ProcessGrid{4, 1, 1, 1}, 4);
  EXPECT_DOUBLE_EQ(c.fp_halo, 0.0);
  EXPECT_GT(c.allreduce, 0.0);  // dL/dw allreduce still required
}

TEST(LayerCost, SpatialSplitAddsHaloAndShrinksCompute) {
  ConvLayerDesc d{1, 18, 2048, 2048, 128, 5, 2, 2};
  const auto serial = cost_of(d, ProcessGrid{1, 1, 1, 1}, 1);
  const auto split = cost_of(d, ProcessGrid{1, 1, 2, 2}, 4);
  EXPECT_GT(split.fp_halo, 0.0);
  EXPECT_LT(split.fp_compute, serial.fp_compute);
  EXPECT_GT(split.fp_compute, serial.fp_compute / 8);  // sane bounds
}

TEST(LayerCost, OverlapHidesHaloWhenComputeDominates) {
  // Large spatial domain (mesh conv1_1): halo is fully hidden (§VI-A: "halo
  // exchange overheads are well-hidden").
  ConvLayerDesc d{1, 18, 2048, 2048, 128, 5, 2, 2};
  const auto c = cost_of(d, ProcessGrid{1, 1, 4, 4}, 16);
  EXPECT_GT(c.fp_compute, c.fp_halo);
  EXPECT_LT(c.fp(true), c.fp(false));
  EXPECT_NEAR(c.fp(true), c.fp_compute + c.boundary_overhead, 1e-9);
}

TEST(LayerCost, OverlapBoundedByHaloWhenCommDominates) {
  // Tiny compute with a big kernel: halo exchange dominates and cannot be
  // hidden (the conv1 N=1 forward case of Fig. 2).
  ConvLayerDesc d{1, 3, 224, 224, 64, 7, 2, 3};
  const auto c = cost_of(d, ProcessGrid{1, 1, 4, 4}, 16);
  EXPECT_GT(c.fp(true), c.fp_compute);
  EXPECT_GE(c.fp(false), c.fp(true));
}

TEST(LayerCost, InterNodeHaloCostsMoreThanIntraNode) {
  ConvLayerDesc d{1, 64, 512, 512, 64, 3, 1, 1};
  CommModel comm(kMachine);
  // 4-way split inside one node vs 16-way split across nodes: per-direction
  // link changes from NVLink to IB.
  const double intra = halo_exchange_time(d, ProcessGrid{1, 1, 2, 2}, comm, false);
  const double inter = halo_exchange_time(d, ProcessGrid{1, 1, 4, 4}, comm, false);
  // The 16-way halos are smaller per message but cross nodes; latency makes
  // them comparatively expensive.
  EXPECT_GT(inter, 0.5 * intra);
}

TEST(LayerCost, HalvingHeightOnlySkipsEastWestExchanges) {
  ConvLayerDesc d{2, 32, 128, 128, 32, 3, 1, 1};
  CommModel comm(kMachine);
  const double h_only = halo_exchange_time(d, ProcessGrid{1, 1, 2, 1}, comm, false);
  const double both = halo_exchange_time(d, ProcessGrid{1, 1, 2, 2}, comm, false);
  EXPECT_LT(h_only, both);  // west/east + corners added
}

TEST(LayerCost, AllreduceIndependentOfSpatialSplit) {
  ConvLayerDesc d{8, 64, 64, 64, 64, 3, 1, 1};
  const auto a = cost_of(d, ProcessGrid{8, 1, 1, 1}, 8);
  const auto b = cost_of(d, ProcessGrid{2, 1, 2, 2}, 8);
  EXPECT_DOUBLE_EQ(a.allreduce, b.allreduce);  // same weights, same span
}

TEST(LayerCost, SampleParallelismIsCheapestCommunication) {
  // §V-A: "in terms of communication overheads, sample parallelism is the
  // 'cheapest' approach".
  ConvLayerDesc d{16, 64, 56, 56, 64, 3, 1, 1};
  const auto sample = cost_of(d, ProcessGrid{16, 1, 1, 1}, 16);
  const auto spatial = cost_of(d, ProcessGrid{1, 1, 4, 4}, 16);
  const auto hybrid = cost_of(d, ProcessGrid{4, 1, 2, 2}, 16);
  const double sample_comm = sample.fp_halo + sample.bpx_halo;
  EXPECT_EQ(sample_comm, 0.0);
  EXPECT_GT(spatial.fp_halo + spatial.bpx_halo, 0.0);
  EXPECT_GT(hybrid.fp_halo + hybrid.bpx_halo, 0.0);
}

TEST(ChannelParallel, ReduceScatterReplacesHalo) {
  ConvLayerDesc d{32, 512, 28, 28, 128, 1, 1, 0};
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const auto c = channel_filter_cost(d, 1, 4, comm, compute, 4);
  EXPECT_GT(c.fp_halo, 0.0);  // the output reduce-scatter
  const auto serial = channel_filter_cost(d, 1, 1, comm, compute, 1);
  EXPECT_LT(c.fp_compute, serial.fp_compute);
}

TEST(ChannelParallel, ShrinksWeightAllreduce) {
  ConvLayerDesc d{32, 256, 14, 14, 256, 3, 1, 1};
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const auto full = channel_filter_cost(d, 16, 1, comm, compute, 16);
  const auto split = channel_filter_cost(d, 4, 4, comm, compute, 16);
  EXPECT_LT(split.allreduce, full.allreduce);
}

TEST(ChannelParallel, CanBeatSpatialForManyFiltersTinySpatial) {
  // §VI-B2: "Channel/filter parallelism may be more promising, as many
  // layers have many filters" — deep ResNet layer: 7×7 spatial, 512→512.
  ConvLayerDesc d{32, 512, 7, 7, 512, 3, 1, 1};
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const auto spatial = conv_layer_cost(d, ProcessGrid{8, 1, 2, 2}, comm, compute, 32);
  const auto channel = channel_filter_cost(d, 8, 4, comm, compute, 32);
  EXPECT_LT(channel.total(true), spatial.total(true));
}

TEST(ChannelParallel, ConvLayerCostDispatchMatchesChannelFilterCost) {
  ConvLayerDesc d{32, 512, 7, 7, 512, 3, 1, 1};
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const auto direct = channel_filter_cost(d, 8, 4, comm, compute, 32);
  const auto dispatched =
      conv_layer_cost(d, ProcessGrid{8, 4, 1, 1}, comm, compute, 32);
  EXPECT_DOUBLE_EQ(dispatched.total(true), direct.total(true));
  EXPECT_DOUBLE_EQ(dispatched.allreduce, direct.allreduce);
}

TEST(ChannelParallel, ChannelTimesSpatialGridsArePriceable) {
  // The engine executes c > 1 grids with spatial splits inside the channel
  // group (exactness case channel2_spatial2); the cost model must price
  // them rather than reject them.
  ConvLayerDesc d{8, 64, 16, 16, 64, 3, 1, 1};
  CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const auto mixed =
      conv_layer_cost(d, ProcessGrid{1, 2, 2, 1}, comm, compute, 4);
  EXPECT_GT(mixed.fp_compute, 0.0);
  EXPECT_GT(mixed.fp_halo, 0.0);  // reduce-scatter + spatial halo
  // The spatial split shrinks compute relative to the pure channel grid of
  // the same channel ways, and adds halo traffic on top of the
  // reduce-scatter of the (smaller) owned block.
  const auto pure = conv_layer_cost(d, ProcessGrid{2, 2, 1, 1}, comm, compute, 4);
  EXPECT_LT(mixed.fp_compute, pure.fp_compute * 1.01);
}

}  // namespace
}  // namespace distconv::perf
