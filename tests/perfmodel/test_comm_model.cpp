#include <gtest/gtest.h>

#include "perf/comm_model.hpp"

namespace distconv::perf {
namespace {

TEST(LinkModel, AlphaBetaLinear) {
  LinkModel link{1e-6, 1e-9};
  EXPECT_DOUBLE_EQ(link.time(0), 1e-6);
  EXPECT_DOUBLE_EQ(link.time(1000), 1e-6 + 1e-6);
}

TEST(MachineModel, NodePacking) {
  MachineModel m;
  EXPECT_TRUE(m.same_node(0, 3));
  EXPECT_FALSE(m.same_node(3, 4));
  EXPECT_EQ(&m.link(0, 1), &m.intra);
  EXPECT_EQ(&m.link(0, 4), &m.inter);
}

TEST(CommModel, SingleRankCollectivesAreFree) {
  CommModel comm(MachineModel::lassen());
  EXPECT_DOUBLE_EQ(comm.allreduce(1, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(comm.alltoall(1, 1e6), 0.0);
}

TEST(CommModel, RecursiveDoublingLatencyScalesWithLogP) {
  CommModel comm(MachineModel::lassen());
  const double t16 = comm.allreduce_recursive_doubling(16, 4);
  const double t256 = comm.allreduce_recursive_doubling(256, 4);
  EXPECT_NEAR(t256 / t16, 2.0, 0.01);  // 8 steps vs 4 steps
}

TEST(CommModel, RingBandwidthTermDominatesLargeMessages) {
  CommModel comm(MachineModel::lassen());
  const double bytes = 100e6;
  const double t = comm.allreduce_ring(8, bytes);
  // 2 (p−1)/p n β plus small latency/γ terms.
  const double bw_term = 2.0 * (7.0 / 8.0) * bytes / 10e9;
  EXPECT_GT(t, bw_term);
  EXPECT_LT(t, bw_term * 1.5);
}

TEST(CommModel, AlgorithmSelectionCrossover) {
  // Small message → recursive doubling (latency-optimal); large message →
  // ring/hierarchical (bandwidth-optimal). Mirrors the kAuto selection in
  // comm/collectives.hpp.
  CommModel comm(MachineModel::lassen());
  const int p = 64;
  EXPECT_LE(comm.allreduce(p, 64), comm.allreduce_ring(p, 64));
  EXPECT_LE(comm.allreduce(p, 64e6),
            comm.allreduce_recursive_doubling(p, 64e6));
}

TEST(CommModel, HierarchicalBeatsFlatRingAcrossManyNodes) {
  CommModel comm(MachineModel::lassen());
  const double flat = comm.allreduce_ring(512, 20e6);
  const double hier = comm.allreduce_hierarchical(512, 20e6);
  EXPECT_LT(hier, flat);
}

TEST(CommModel, AllreduceMonotoneInSize) {
  CommModel comm(MachineModel::lassen());
  double prev = 0;
  for (double bytes : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    const double t = comm.allreduce(128, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CommModel, AlltoallScalesWithPayload) {
  CommModel comm(MachineModel::lassen());
  EXPECT_LT(comm.alltoall(16, 1e5), comm.alltoall(16, 1e7));
  EXPECT_LT(comm.alltoall(4, 1e6), comm.alltoall(64, 1e6));
}

}  // namespace
}  // namespace distconv::perf
