#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "models/models.hpp"
#include "perf/strategy_opt.hpp"

namespace distconv::perf {
namespace {

const MachineModel kMachine = MachineModel::lassen();

TEST(Candidates, SampleParallelAlwaysFirst) {
  OptimizerOptions opt;
  const auto grids = candidate_grids(8, Shape4{8, 3, 64, 64},
                                     Shape4{8, 16, 64, 64}, 3, opt);
  ASSERT_FALSE(grids.empty());
  EXPECT_EQ(grids[0], (ProcessGrid{8, 1, 1, 1}));
}

TEST(Candidates, SpatialVariantsRequireEnoughRowsAndSamples) {
  OptimizerOptions opt;
  // Only 2 samples on 8 ranks: pure sample parallelism is impossible; the
  // 4- and 8-way hybrids survive.
  const auto grids = candidate_grids(8, Shape4{2, 3, 64, 64},
                                     Shape4{2, 16, 64, 64}, 3, opt);
  for (const auto& g : grids) {
    EXPECT_LE(g.n, 2);
    EXPECT_GE(g.h * g.w, 4);
  }
  EXPECT_FALSE(grids.empty());
}

TEST(Candidates, TooFineSpatialSplitsExcluded) {
  OptimizerOptions opt;
  // 8×8 image with K=7: O=3 halos fit in 4-row blocks (2-way) but not in
  // 2-row blocks (4-way per dimension) — the §III-A edge case.
  const auto grids =
      candidate_grids(4, Shape4{4, 3, 8, 8}, Shape4{4, 8, 8, 8}, 7, opt);
  ASSERT_FALSE(grids.empty());
  for (const auto& g : grids) {
    EXPECT_LE(g.h, 2) << "4-way H split must be excluded for K=7 on 8x8";
    EXPECT_LE(g.w, 2);
  }
}

TEST(Candidates, HeadLayersFallBackToSampleParallelWithEmptyBlocks) {
  OptimizerOptions opt;
  // A 1×1 output on more ranks than samples admits no balanced grid; the
  // fallback is sample parallelism with empty shards on the excess ranks.
  const auto grids =
      candidate_grids(8, Shape4{2, 64, 1, 1}, Shape4{2, 8, 1, 1}, 1, opt);
  ASSERT_EQ(grids.size(), 1u);
  EXPECT_EQ(grids[0], (ProcessGrid{8, 1, 1, 1}));
}

TEST(Optimizer, PicksSampleParallelismWhenBatchIsAmple) {
  // Plenty of samples per rank: the cheapest (sample) distribution should
  // win everywhere (§V-A: sample parallelism has the least overhead).
  const auto spec = models::make_mesh_model_1k(64);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  for (int i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(strategy.grids[i].h * strategy.grids[i].w, 1) << i;
  }
}

TEST(Optimizer, UsesSpatialParallelismWhenBatchIsSmall) {
  // 1 sample on 8 ranks: only spatial/hybrid candidates exist for conv
  // layers.
  const auto spec = models::make_mesh_model_1k(1);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  bool any_spatial = false;
  for (int i = 0; i < spec.size(); ++i) {
    if (strategy.grids[i].h * strategy.grids[i].w > 1) any_spatial = true;
  }
  EXPECT_TRUE(any_spatial);
}

TEST(Optimizer, StrategyBeatsOrMatchesUniformBaselines) {
  // The optimizer's pick must cost no more than every uniform hybrid
  // strategy (it has them all in its search space for line networks).
  const auto spec = models::make_mesh_model_1k(2);
  const int ranks = 16;
  const auto chosen = optimize_strategy(spec, ranks, kMachine);
  const double chosen_cost =
      network_cost(spec, chosen, kMachine).minibatch_time();
  for (int gps : {8, 16}) {
    const auto uniform = core::Strategy::hybrid(spec.size(), ranks, gps);
    const double cost = network_cost(spec, uniform, kMachine).minibatch_time();
    EXPECT_LE(chosen_cost, cost * 1.02) << gps;
  }
}

TEST(Optimizer, HandlesResNetBranches) {
  // ResNet-50's DAG exercises the longest-path decomposition; every layer
  // must end with a grid spanning all ranks.
  const auto spec = models::make_resnet50(32);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  ASSERT_EQ(static_cast<int>(strategy.grids.size()), spec.size());
  for (int i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(strategy.grids[i].size(), 8) << i;
  }
}

TEST(Optimizer, ResNetWithFewSamplesGoesSpatialEarly) {
  // Strong-scaling regime: 4 samples on 16 ranks — early high-resolution
  // layers should pick hybrid decompositions.
  const auto spec = models::make_resnet50(4);
  const auto strategy = optimize_strategy(spec, 16, kMachine);
  const int conv1 = models::layer_index(spec, "conv1");
  EXPECT_GT(strategy.grids[conv1].h * strategy.grids[conv1].w, 1);
}

TEST(Optimizer, MixedStrategiesAreExecutable) {
  // Whatever the optimizer returns must run on the real engine.
  const auto spec = models::make_mesh_model_test(2, 64);
  const auto strategy = optimize_strategy(spec, 4, kMachine);
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    core::Model model(spec, comm, strategy, 3);
    Tensor<float> input(model.rt(0).out_shape);
    Rng rng(1);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    EXPECT_TRUE(std::isfinite(loss));
  });
}

TEST(ChannelAdvisory, FlagsDeepResNetLayers) {
  // §VI-B2: deep layers (many filters, 7x7-14x14 spatial) are where channel
  // parallelism should beat spatial decomposition under strong scaling.
  const auto spec = models::make_resnet50(4);
  const auto opportunities = analyze_channel_opportunities(spec, 16, kMachine);
  ASSERT_FALSE(opportunities.empty());
  bool deep = false;
  for (const auto& opp : opportunities) {
    EXPECT_LT(opp.best_channel_cost, opp.best_spatial_cost);
    EXPECT_GE(opp.channel_ways, 2);
    if (opp.name.rfind("res5", 0) == 0 || opp.name.rfind("res4", 0) == 0) {
      deep = true;
    }
  }
  EXPECT_TRUE(deep) << "expected opportunities in the deep stages";
}

TEST(ChannelAdvisory, MeshStemPrefersSpatial) {
  // The 18-channel stem has a huge spatial domain and almost no channels to
  // split: spatial parallelism must win there (the paper's headline case).
  const auto spec = models::make_mesh_model_1k(2);
  const auto opportunities = analyze_channel_opportunities(spec, 8, kMachine);
  for (const auto& opp : opportunities) {
    EXPECT_NE(opp.name, "conv1_1");
  }
}

}  // namespace
}  // namespace distconv::perf
