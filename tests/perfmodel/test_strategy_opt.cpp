#include <gtest/gtest.h>

#include <cmath>

#include "core/layers.hpp"
#include "core/model.hpp"
#include "models/models.hpp"
#include "perf/strategy_opt.hpp"

namespace distconv::perf {
namespace {

const MachineModel kMachine = MachineModel::lassen();

TEST(Candidates, SampleParallelAlwaysFirst) {
  OptimizerOptions opt;
  const auto grids = candidate_grids(8, Shape4{8, 3, 64, 64},
                                     Shape4{8, 16, 64, 64}, 3, opt);
  ASSERT_FALSE(grids.empty());
  EXPECT_EQ(grids[0], (ProcessGrid{8, 1, 1, 1}));
}

TEST(Candidates, SpatialVariantsRequireEnoughRowsAndSamples) {
  OptimizerOptions opt;
  // Only 2 samples on 8 ranks: pure sample parallelism is impossible; the
  // 4- and 8-way hybrids survive.
  const auto grids = candidate_grids(8, Shape4{2, 3, 64, 64},
                                     Shape4{2, 16, 64, 64}, 3, opt);
  for (const auto& g : grids) {
    EXPECT_LE(g.n, 2);
    EXPECT_GE(g.h * g.w, 4);
  }
  EXPECT_FALSE(grids.empty());
}

TEST(Candidates, TooFineSpatialSplitsExcluded) {
  OptimizerOptions opt;
  // 8×8 image with K=7: O=3 halos fit in 4-row blocks (2-way) but not in
  // 2-row blocks (4-way per dimension) — the §III-A edge case.
  const auto grids =
      candidate_grids(4, Shape4{4, 3, 8, 8}, Shape4{4, 8, 8, 8}, 7, opt);
  ASSERT_FALSE(grids.empty());
  for (const auto& g : grids) {
    EXPECT_LE(g.h, 2) << "4-way H split must be excluded for K=7 on 8x8";
    EXPECT_LE(g.w, 2);
  }
}

TEST(Candidates, HeadLayersGetChannelSplitsOrEmptyBlockFallback) {
  OptimizerOptions opt;
  // A 1×1 output on more ranks than samples admits no spatial grid, but a
  // wide head can still split channels/filters (the §III-C model-parallel
  // regime, executable since the channel-parallel engine landed).
  const auto grids =
      candidate_grids(8, Shape4{2, 64, 1, 1}, Shape4{2, 8, 1, 1}, 1, opt);
  ASSERT_FALSE(grids.empty());
  for (const auto& g : grids) {
    EXPECT_EQ(g.h * g.w, 1);
    EXPECT_GT(g.c, 1) << "only channel splits are balanced here";
  }
  // With a single output channel nothing splits: the fallback is sample
  // parallelism with empty shards on the excess ranks.
  const auto fallback =
      candidate_grids(8, Shape4{2, 64, 1, 1}, Shape4{2, 1, 1, 1}, 1, opt);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0], (ProcessGrid{8, 1, 1, 1}));
}

TEST(Optimizer, PicksSampleParallelismWhenBatchIsAmple) {
  // Plenty of samples per rank: the cheapest (sample) distribution should
  // win everywhere (§V-A: sample parallelism has the least overhead).
  const auto spec = models::make_mesh_model_1k(64);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  for (int i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(strategy.grids[i].h * strategy.grids[i].w, 1) << i;
  }
}

TEST(Optimizer, UsesSpatialParallelismWhenBatchIsSmall) {
  // 1 sample on 8 ranks: only spatial/hybrid candidates exist for conv
  // layers.
  const auto spec = models::make_mesh_model_1k(1);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  bool any_spatial = false;
  for (int i = 0; i < spec.size(); ++i) {
    if (strategy.grids[i].h * strategy.grids[i].w > 1) any_spatial = true;
  }
  EXPECT_TRUE(any_spatial);
}

TEST(Optimizer, StrategyBeatsOrMatchesUniformBaselines) {
  // The optimizer's pick must cost no more than every uniform hybrid
  // strategy (it has them all in its search space for line networks).
  const auto spec = models::make_mesh_model_1k(2);
  const int ranks = 16;
  const auto chosen = optimize_strategy(spec, ranks, kMachine);
  const double chosen_cost =
      network_cost(spec, chosen, kMachine).minibatch_time();
  for (int gps : {8, 16}) {
    const auto uniform = core::Strategy::hybrid(spec.size(), ranks, gps);
    const double cost = network_cost(spec, uniform, kMachine).minibatch_time();
    EXPECT_LE(chosen_cost, cost * 1.02) << gps;
  }
}

TEST(Optimizer, HandlesResNetBranches) {
  // ResNet-50's DAG exercises the longest-path decomposition; every layer
  // must end with a grid spanning all ranks.
  const auto spec = models::make_resnet50(32);
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  ASSERT_EQ(static_cast<int>(strategy.grids.size()), spec.size());
  for (int i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(strategy.grids[i].size(), 8) << i;
  }
}

TEST(Optimizer, ResNetWithFewSamplesGoesSpatialEarly) {
  // Strong-scaling regime: 4 samples on 16 ranks — early high-resolution
  // layers should pick hybrid decompositions.
  const auto spec = models::make_resnet50(4);
  const auto strategy = optimize_strategy(spec, 16, kMachine);
  const int conv1 = models::layer_index(spec, "conv1");
  EXPECT_GT(strategy.grids[conv1].h * strategy.grids[conv1].w, 1);
}

TEST(Optimizer, MixedStrategiesAreExecutable) {
  // Whatever the optimizer returns must run on the real engine.
  const auto spec = models::make_mesh_model_test(2, 64);
  const auto strategy = optimize_strategy(spec, 4, kMachine);
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    core::Model model(spec, comm, strategy, 3);
    Tensor<float> input(model.rt(0).out_shape);
    Rng rng(1);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    EXPECT_TRUE(std::isfinite(loss));
  });
}

TEST(Candidates, ChannelSplitsOfferedForDeepLayers) {
  OptimizerOptions opt;
  // Deep layer: many channels/filters, tiny spatial domain.
  const auto grids = candidate_grids(8, Shape4{8, 256, 7, 7},
                                     Shape4{8, 256, 7, 7}, 3, opt);
  bool channel2 = false, channel4 = false, channel8 = false;
  for (const auto& g : grids) {
    if (g.c > 1) {
      EXPECT_EQ(g.h, 1);
      EXPECT_EQ(g.w, 1);
      EXPECT_EQ(g.n * g.c, 8);
    }
    channel2 |= g.c == 2;
    channel4 |= g.c == 4;
    channel8 |= g.c == 8;
  }
  EXPECT_TRUE(channel2 && channel4 && channel8);
}

TEST(Candidates, ChannelSplitsRequireNonEmptySlices) {
  OptimizerOptions opt;
  // 3 input channels: splits beyond 3 ways would leave empty slices.
  const auto grids =
      candidate_grids(8, Shape4{8, 3, 7, 7}, Shape4{8, 64, 7, 7}, 3, opt);
  for (const auto& g : grids) EXPECT_LE(g.c, 3);
  // Non-power-of-two ways are offered when they divide the rank count.
  const auto grids6 =
      candidate_grids(6, Shape4{8, 64, 7, 7}, Shape4{8, 64, 7, 7}, 3, opt);
  bool channel3 = false;
  for (const auto& g : grids6) channel3 |= g.c == 3;
  EXPECT_TRUE(channel3);
}

TEST(Optimizer, PicksChannelParallelismForDeepNarrowNet) {
  // A deep-layer stack where spatial splitting is infeasible (4×4 domain,
  // K=3 halos do not fit) and sample parallelism is capped by a single
  // sample: channel/filter parallelism is the only way to shrink the local
  // work, so the optimizer must emit c > 1 conv grids — and they must run.
  core::NetworkBuilder nb;
  const int in = nb.input(Shape4{1, 32, 4, 4});
  int x = nb.conv("deep1", in, 32, 3, 1);
  x = nb.relu("r1", x);
  x = nb.conv("deep2", x, 32, 3, 1);
  x = nb.relu("r2", x);
  x = nb.conv("deep3", x, 32, 3, 1);
  const auto spec = nb.take();
  const auto strategy = optimize_strategy(spec, 8, kMachine);
  bool any_channel = false;
  for (int i = 0; i < spec.size(); ++i) {
    if (dynamic_cast<const core::Conv2dLayer*>(&spec.layer(i)) != nullptr) {
      any_channel |= strategy.grids[i].c > 1;
    }
  }
  EXPECT_TRUE(any_channel) << strategy.str();

  comm::World world(8);
  world.run([&](comm::Comm& comm) {
    core::Model model(spec, comm, strategy, 3);
    Tensor<float> input(model.rt(0).out_shape);
    Rng rng(1);
    input.fill_uniform(rng);
    model.set_input(0, input);
    model.forward();
    Tensor<float> targets(model.rt(model.output_layer()).out_shape);
    const double loss = model.loss_bce(targets);
    model.backward();
    model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    EXPECT_TRUE(std::isfinite(loss));
  });
}

TEST(ChannelAdvisory, FlagsDeepResNetLayers) {
  // §VI-B2: deep layers (many filters, 7x7-14x14 spatial) are where channel
  // parallelism should beat spatial decomposition under strong scaling.
  const auto spec = models::make_resnet50(4);
  const auto opportunities = analyze_channel_opportunities(spec, 16, kMachine);
  ASSERT_FALSE(opportunities.empty());
  bool deep = false;
  for (const auto& opp : opportunities) {
    EXPECT_LT(opp.best_channel_cost, opp.best_spatial_cost);
    EXPECT_GE(opp.channel_ways, 2);
    if (opp.name.rfind("res5", 0) == 0 || opp.name.rfind("res4", 0) == 0) {
      deep = true;
    }
  }
  EXPECT_TRUE(deep) << "expected opportunities in the deep stages";
}

TEST(InferenceObjective, ServingGridsDifferFromTrainingAtBatchOne) {
  // At a serving batch of 1, sample parallelism leaves every rank but one
  // idle: the forward-only objective must decompose the heavy layers
  // spatially (or over channels) instead, while the training objective at a
  // saturating batch keeps recommending sample-majority grids — the
  // "different grids for serving than for training" contract.
  const auto serve_spec = models::make_mesh_model_1k(1);
  OptimizerOptions serving;
  serving.objective = Objective::kInference;
  const auto serving_strategy =
      optimize_strategy(serve_spec, 4, kMachine, serving);
  bool any_decomposed = false;
  for (const auto& g : serving_strategy.grids) {
    if (g.h * g.w > 1 || g.c > 1) any_decomposed = true;
  }
  EXPECT_TRUE(any_decomposed)
      << "batch-1 serving should not stay pure sample-parallel";

  const auto train_spec = models::make_mesh_model_1k(4);
  const auto training_strategy = optimize_strategy(train_spec, 4, kMachine);
  EXPECT_NE(serving_strategy.str(), training_strategy.str());
}

TEST(InferenceObjective, ThroughputBatchesKeepSampleParallelism) {
  // At a saturating dispatch batch the forward-only objective agrees with
  // the classic result: sample parallelism (no halo, no channel collectives)
  // maximizes throughput.
  const auto spec = models::make_resnet_tiny(8);
  OptimizerOptions serving;
  serving.objective = Objective::kInference;
  const auto strategy = optimize_strategy(spec, 4, kMachine, serving);
  int sample_layers = 0, total = 0;
  for (const auto& g : strategy.grids) {
    ++total;
    if (g.n == 4 && g.c == 1 && g.h == 1 && g.w == 1) ++sample_layers;
  }
  EXPECT_GT(sample_layers, total / 2);
}

TEST(InferenceObjective, NodeCostDropsBackpropTerms) {
  const auto spec = models::make_mesh_model_1k(2);
  const auto shapes = spec.infer_shapes();
  OptimizerOptions train_opt;
  OptimizerOptions serve_opt;
  serve_opt.objective = Objective::kInference;
  const ProcessGrid grid{1, 1, 2, 2};
  for (int i = 0; i < spec.size(); ++i) {
    const double train = layer_node_cost(spec, i, shapes, grid, kMachine,
                                         train_opt);
    const double serve = layer_node_cost(spec, i, shapes, grid, kMachine,
                                         serve_opt);
    EXPECT_LE(serve, train) << "layer " << i;
    if (train > 0.0 && conv_desc(spec, i, shapes).has_value()) {
      EXPECT_LT(serve, train) << "conv layer " << i
                              << " must shed its backward terms";
    }
  }
}

TEST(ChannelAdvisory, MeshStemPrefersSpatial) {
  // The 18-channel stem has a huge spatial domain and almost no channels to
  // split: spatial parallelism must win there (the paper's headline case).
  const auto spec = models::make_mesh_model_1k(2);
  const auto opportunities = analyze_channel_opportunities(spec, 8, kMachine);
  for (const auto& opp : opportunities) {
    EXPECT_NE(opp.name, "conv1_1");
  }
}

}  // namespace
}  // namespace distconv::perf
