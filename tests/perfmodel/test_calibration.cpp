// Measured-kernel calibration (perf/compute_model.hpp): table parsing, the
// calibrated model's rate arithmetic, and the roofline fallback.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "perf/compute_model.hpp"

namespace distconv::perf {
namespace {

class CalibrationFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "dc_calibration_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(CalibrationFile, ParsesTableWithCommentsAndJunk) {
  write("# distconv kernel calibration\n"
        "conv_fwd_gflops 12.5   # aggregate over shapes\n"
        "\n"
        "unrelated_key 3.0\n"
        "conv_bwd_data_gflops 10.0\n"
        "conv_bwd_filter_gflops 8.0\n");
  const auto cal = load_kernel_calibration(path_);
  ASSERT_TRUE(cal.has_value());
  EXPECT_DOUBLE_EQ(cal->fwd_flops, 12.5e9);
  EXPECT_DOUBLE_EQ(cal->bwd_data_flops, 10.0e9);
  EXPECT_DOUBLE_EQ(cal->bwd_filter_flops, 8.0e9);
}

TEST_F(CalibrationFile, IncompleteOrInvalidTablesRejected) {
  write("conv_fwd_gflops 12.5\n");  // missing backward rates
  EXPECT_FALSE(load_kernel_calibration(path_).has_value());
  write("conv_fwd_gflops -1\n"
        "conv_bwd_data_gflops 10\n"
        "conv_bwd_filter_gflops 8\n");  // non-positive rate ignored → invalid
  EXPECT_FALSE(load_kernel_calibration(path_).has_value());
  EXPECT_FALSE(load_kernel_calibration("/nonexistent/path.txt").has_value());
}

TEST_F(CalibrationFile, CalibratedModelUsesMeasuredRates) {
  KernelCalibration cal;
  cal.fwd_flops = 20e9;
  cal.bwd_data_flops = 10e9;
  cal.bwd_filter_flops = 5e9;
  const CalibratedComputeModel model(cal);
  ConvWork w;
  w.n = 2;
  w.c = 8;
  w.h = 16;
  w.w = 16;
  w.f = 8;
  w.kh = w.kw = 3;
  const double flops = w.flops();
  EXPECT_DOUBLE_EQ(model.conv_fwd(w), flops / 20e9);
  EXPECT_DOUBLE_EQ(model.conv_bwd_data(w), flops / 10e9);
  EXPECT_DOUBLE_EQ(model.conv_bwd_filter(w), flops / 5e9);
  // Rate order: slower pass → larger time, matching the roofline's shape.
  EXPECT_LT(model.conv_fwd(w), model.conv_bwd_filter(w));
}

TEST(CalibrationFallback, DefaultModelIsRooflineWithoutEnv) {
  // The test environment does not set DC_KERNEL_CALIBRATION, so the default
  // model must reproduce the roofline surrogate exactly.
  const MachineModel machine = MachineModel::lassen();
  const auto model = default_compute_model(machine);
  ASSERT_NE(model, nullptr);
  const RooflineComputeModel roofline(machine);
  ConvWork w;
  w.n = 4;
  w.c = 64;
  w.h = 28;
  w.w = 28;
  w.f = 64;
  w.kh = w.kw = 3;
  EXPECT_DOUBLE_EQ(model->conv_fwd(w), roofline.conv_fwd(w));
  EXPECT_DOUBLE_EQ(model->conv_bwd_data(w), roofline.conv_bwd_data(w));
  EXPECT_DOUBLE_EQ(model->conv_bwd_filter(w), roofline.conv_bwd_filter(w));
}

}  // namespace
}  // namespace distconv::perf
