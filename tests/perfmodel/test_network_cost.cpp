#include <gtest/gtest.h>

#include "models/models.hpp"
#include "perf/network_cost.hpp"
#include "sim/experiment.hpp"

namespace distconv::perf {
namespace {

const MachineModel kMachine = MachineModel::lassen();

TEST(NetworkCost, MeshModelStrongScalingIsMonotone) {
  // More GPUs per sample at a fixed mini-batch must reduce the simulated
  // time across the paper's range (Table I behaviour).
  const auto spec = models::make_mesh_model_1k(4);
  double prev = 1e9;
  for (int gps : {1, 2, 4, 8, 16}) {
    const auto strategy = core::Strategy::hybrid(spec.size(), 4 * gps, gps);
    const auto cost = network_cost(spec, strategy, kMachine);
    EXPECT_LT(cost.minibatch_time(), prev) << gps;
    prev = cost.minibatch_time();
  }
}

TEST(NetworkCost, SpeedupsAreSublinear) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto base = network_cost(
      spec, core::Strategy::hybrid(spec.size(), 4, 1), kMachine);
  for (int gps : {2, 4, 8, 16}) {
    const auto cost = network_cost(
        spec, core::Strategy::hybrid(spec.size(), 4 * gps, gps), kMachine);
    const double speedup = base.minibatch_time() / cost.minibatch_time();
    EXPECT_LT(speedup, gps) << gps;  // never superlinear
    EXPECT_GT(speedup, 0.3 * gps) << gps;  // but real
  }
}

TEST(NetworkCost, OverlapReducesTime) {
  const auto spec = models::make_mesh_model_1k(8);
  const auto strategy = core::Strategy::hybrid(spec.size(), 32, 4);
  NetworkCostOptions with, without;
  without.overlap_halo = false;
  without.overlap_allreduce = false;
  const double a = network_cost(spec, strategy, kMachine, with).minibatch_time();
  const double b =
      network_cost(spec, strategy, kMachine, without).minibatch_time();
  EXPECT_LT(a, b);
}

TEST(NetworkCost, WeakScalingIsNearlyFlatForSampleParallelism) {
  // Fig. 4: "the flat mini-batch time for increasing numbers of GPUs ...
  // shows near-perfect weak scaling" (below the memory-pressure scale).
  const auto t64 = network_cost(models::make_mesh_model_1k(64),
                                core::Strategy::sample_parallel(
                                    models::make_mesh_model_1k(64).size(), 64),
                                kMachine)
                       .minibatch_time();
  const auto t512 = network_cost(models::make_mesh_model_1k(512),
                                 core::Strategy::sample_parallel(
                                     models::make_mesh_model_1k(512).size(), 512),
                                 kMachine)
                        .minibatch_time();
  EXPECT_NEAR(t512 / t64, 1.0, 0.05);
}

TEST(NetworkCost, MemoryPressureSlowsSampleParallelismAt2048) {
  // Fig. 4's sample-parallel degradation at 2048 GPUs.
  const auto spec = models::make_mesh_model_1k(2048);
  const auto sample =
      network_cost(spec, core::Strategy::sample_parallel(spec.size(), 2048),
                   kMachine);
  EXPECT_TRUE(sample.memory.pressured);
  const auto spec_small = models::make_mesh_model_1k(1024);
  const auto smaller = network_cost(
      spec_small, core::Strategy::sample_parallel(spec_small.size(), 1024),
      kMachine);
  EXPECT_FALSE(smaller.memory.pressured);
  EXPECT_GT(sample.minibatch_time(), 1.1 * smaller.minibatch_time());
}

TEST(Memory, Mesh2kInfeasibleWithoutSpatialParallelism) {
  // §VI: "pure sample parallelism is not possible due to memory constraints"
  // for the 2K model; 2 GPUs/sample fits.
  const auto spec = models::make_mesh_model_2k(2);
  const auto sample = estimate_memory(
      spec, core::Strategy::sample_parallel(spec.size(), 2), kMachine, 2);
  EXPECT_FALSE(sample.feasible);
  const auto spatial = estimate_memory(
      spec, core::Strategy::hybrid(spec.size(), 4, 2), kMachine, 4);
  EXPECT_TRUE(spatial.feasible);
}

TEST(Memory, Mesh1kFitsOneSamplePerGpu) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto est = estimate_memory(
      spec, core::Strategy::sample_parallel(spec.size(), 4), kMachine, 4);
  EXPECT_TRUE(est.feasible);
}

TEST(Memory, ResNet50At32PerGpuFits) {
  const auto spec = models::make_resnet50(128);
  const auto est = estimate_memory(
      spec, core::Strategy::sample_parallel(spec.size(), 4), kMachine, 4);
  EXPECT_TRUE(est.feasible);  // 32 samples per GPU, the paper's baseline
}

TEST(Memory, SpatialParallelismReducesActivationMemory) {
  const auto spec = models::make_mesh_model_2k(2);
  const auto one = estimate_memory(
      spec, core::Strategy::sample_parallel(spec.size(), 2), kMachine, 2);
  const auto four = estimate_memory(
      spec, core::Strategy::hybrid(spec.size(), 8, 4), kMachine, 8);
  EXPECT_LT(four.activation_bytes, 0.3 * one.activation_bytes);
}

TEST(Sim, TableOneShapeReproduced) {
  // The headline strong-scaling behaviour of Table I: speedups grow with
  // GPUs/sample and land in the paper's band.
  sim::ExperimentOptions opt;
  auto build = [](std::int64_t n) { return models::make_mesh_model_1k(n); };
  const auto cell1 = sim::evaluate(build, 4, 1, opt);
  const auto cell2 = sim::evaluate(build, 4, 2, opt);
  const auto cell16 = sim::evaluate(build, 4, 16, opt);
  ASSERT_TRUE(cell1.feasible && cell2.feasible && cell16.feasible);
  const double s2 = cell1.seconds / cell2.seconds;
  const double s16 = cell1.seconds / cell16.seconds;
  EXPECT_GT(s2, 1.5);   // paper: 2.0x
  EXPECT_LT(s2, 2.05);
  EXPECT_GT(s16, 4.0);  // paper: 6.1x
  EXPECT_LT(s16, 10.0);
}

TEST(Sim, TableTwoBaselineIsTwoGpus) {
  sim::ExperimentOptions opt;
  auto build = [](std::int64_t n) { return models::make_mesh_model_2k(n); };
  EXPECT_FALSE(sim::evaluate(build, 2, 1, opt).feasible);
  EXPECT_TRUE(sim::evaluate(build, 2, 2, opt).feasible);
}

TEST(Sim, MachineSizeLimitsConfigurations) {
  sim::ExperimentOptions opt;
  auto build = [](std::int64_t n) { return models::make_mesh_model_1k(n); };
  const auto cell = sim::evaluate(build, 1024, 4, opt);  // 4096 GPUs > 2048
  EXPECT_FALSE(cell.feasible);
  EXPECT_NE(cell.infeasible_reason.find("GPUs"), std::string::npos);
}

TEST(Sim, FormattingContainsPaperStyleColumns) {
  sim::ExperimentOptions opt;
  auto build = [](std::int64_t n) { return models::make_mesh_model_1k(n); };
  const auto table = sim::strong_scaling(build, {4}, {1, 2}, opt);
  const std::string text = sim::format_strong_scaling(table, 1, "T");
  EXPECT_NE(text.find("1 GPU/sample"), std::string::npos);
  EXPECT_NE(text.find("2 GPUs/sample"), std::string::npos);
  EXPECT_NE(text.find("x)"), std::string::npos);
}

TEST(Sim, WeakScalingSeriesRespectMachineSize) {
  sim::ExperimentOptions opt;
  opt.max_gpus = 64;
  auto build = [](std::int64_t n) { return models::make_mesh_model_1k(n); };
  const auto series = sim::weak_scaling(build, {1, 4}, 4, opt);
  ASSERT_EQ(series.size(), 2u);
  for (const auto& s : series) {
    for (const auto& cell : s.cells) {
      EXPECT_LE(cell.gpus, 64);
      if (cell.feasible) {
        EXPECT_GT(cell.seconds, 0.0);
      }
    }
    // Weak scaling: flat within 10% below the pressure scale.
    const double first = s.cells.front().seconds;
    for (const auto& cell : s.cells) {
      if (cell.feasible) {
        EXPECT_NEAR(cell.seconds / first, 1.0, 0.1);
      }
    }
  }
}

TEST(Sim, SamplesPerGroupScalesGpuCount) {
  sim::ExperimentOptions opt;
  opt.samples_per_group = 32;
  auto build = [](std::int64_t n) { return models::make_resnet50(n); };
  const auto cell = sim::evaluate(build, 128, 2, opt);
  EXPECT_EQ(cell.gpus, 8);  // 128 samples / 32 per group x 2 GPUs
  ASSERT_TRUE(cell.feasible);
}

TEST(InferenceCost, ForwardOnlyIsCheaperThanTrainingStep) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const auto train = network_cost(spec, strategy, kMachine);
  const auto infer = inference_cost(spec, strategy, kMachine);
  EXPECT_GT(infer.forward, 0.0);
  // No backprop, no gradient allreduce, one-way shuffles.
  EXPECT_LT(infer.batch_latency(), train.minibatch_time());
  EXPECT_LE(infer.forward, train.forward);
  EXPECT_LE(infer.shuffle, train.shuffle);
}

TEST(InferenceCost, ForwardOnlyMemoryFootprintIsSmaller) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const auto train = estimate_memory(spec, strategy, kMachine, 16);
  const auto infer = estimate_memory_inference(spec, strategy, kMachine, 16);
  // y only (no dy), params only (no grads/momentum).
  EXPECT_NEAR(infer.activation_bytes, train.activation_bytes / 2.0, 1.0);
  EXPECT_NEAR(infer.parameter_bytes, train.parameter_bytes / 3.0, 1.0);
  EXPECT_LT(infer.total_bytes, train.total_bytes);
}

TEST(InferenceCost, SpatialSplitCutsSingleSampleLatency) {
  // The serving regime the forward-only objective exists for: at batch 1,
  // sample parallelism cannot cut latency but a spatial split can.
  const auto spec = models::make_mesh_model_1k(1);
  const auto sample =
      inference_cost(spec, core::Strategy::sample_parallel(spec.size(), 4),
                     kMachine);
  const auto spatial = inference_cost(
      spec, core::Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2}),
      kMachine);
  EXPECT_LT(spatial.batch_latency(), sample.batch_latency());
}

TEST(ServingEstimate, PolicyDelayShapesLatencyPercentiles) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double delay = 2e-3;
  const auto est = estimate_serving(spec, strategy, kMachine, delay);
  EXPECT_GT(est.batch_latency, 0.0);
  EXPECT_NEAR(est.p50_latency, est.batch_latency + 0.5 * delay, 1e-12);
  EXPECT_NEAR(est.p99_latency, est.batch_latency + delay, 1e-12);
  EXPECT_NEAR(est.throughput, 4.0 / est.batch_latency, 1e-6);
  // The greedy policy trades percentile latency for throughput headroom.
  const auto greedy = estimate_serving(spec, strategy, kMachine, 0.0);
  EXPECT_LT(greedy.p99_latency, est.p99_latency);
  EXPECT_EQ(greedy.p50_latency, greedy.p99_latency);
}

TEST(ServingEstimate, ReplicaTermScalesThroughputNotLatency) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double delay = 1e-3;
  const auto one = estimate_serving(spec, strategy, kMachine, delay);
  const auto fleet = estimate_serving(spec, strategy, kMachine, delay,
                                      /*replicas=*/3);
  EXPECT_EQ(one.replicas, 1);
  EXPECT_EQ(one.fleet_throughput, one.throughput);
  EXPECT_EQ(fleet.replicas, 3);
  // Replicas serve independent batches: percentiles are per-replica,
  // throughput scales with the group count.
  EXPECT_EQ(fleet.batch_latency, one.batch_latency);
  EXPECT_EQ(fleet.p99_latency, one.p99_latency);
  EXPECT_EQ(fleet.throughput, one.throughput);
  EXPECT_NEAR(fleet.fleet_throughput, 3.0 * one.throughput, 1e-9);
  EXPECT_THROW(estimate_serving(spec, strategy, kMachine, delay, 0), Error);
}

TEST(InferenceCost, ChannelParallelPricesAllgatherXSchedule) {
  // A channel-parallel conv whose input is much larger than its output:
  // serving's allgather-x completion moves x (big), training's
  // reduce-scatter moves y (small). The inference pricing must reflect the
  // executed allgather-x schedule, so pricing the same layer under both
  // enums must differ in exactly the forward wire term.
  ConvLayerDesc desc;
  desc.n = 4;
  desc.c = 64;
  desc.h = desc.w = 32;
  desc.f = 8;  // f << c → y much smaller than x
  desc.k = 3;
  desc.p = 1;
  const ProcessGrid grid{1, 4, 1, 1};
  const CommModel comm(kMachine);
  RooflineComputeModel compute(kMachine);
  const LayerCost train =
      conv_layer_cost(desc, grid, comm, compute, 4,
                      ChannelFwdSchedule::kReduceScatterY);
  const LayerCost serve =
      conv_layer_cost(desc, grid, comm, compute, 4,
                      ChannelFwdSchedule::kAllgatherX);
  // Same FLOPs either way (C×F work split differently), identical backward.
  EXPECT_EQ(train.bpx_compute, serve.bpx_compute);
  EXPECT_EQ(train.bpx_halo, serve.bpx_halo);
  EXPECT_EQ(train.allreduce, serve.allreduce);
  // x is 8× larger than y here, so the allgather-x forward pays more wire.
  EXPECT_GT(serve.fp_halo, train.fp_halo);
  // And inference_cost prices the allgather-x path end to end.
  core::NetworkBuilder nb;
  const int in = nb.input(Shape4{desc.n, desc.c, desc.h, desc.w});
  nb.conv("c", in, static_cast<int>(desc.f), desc.k, 1, desc.p);
  const auto net = nb.take();
  const auto strategy = core::Strategy::uniform(net.size(), grid);
  const auto infer = inference_cost(net, strategy, kMachine);
  ASSERT_TRUE(infer.layers[1].has_value());
  EXPECT_EQ(infer.layers[1]->fp_halo, serve.fp_halo);
}

TEST(Sim, WeakScalingFormatMentionsInfeasibleReason) {
  sim::ExperimentOptions opt;
  opt.max_gpus = 8;
  auto build = [](std::int64_t n) { return models::make_mesh_model_2k(n); };
  // 1 GPU/sample on the 2K model: every point is memory-infeasible.
  const auto series = sim::weak_scaling(build, {1}, 4, opt);
  const std::string text = sim::format_weak_scaling(series, "T");
  EXPECT_NE(text.find("n/a"), std::string::npos);
  EXPECT_NE(text.find("memory"), std::string::npos);
}

}  // namespace
}  // namespace distconv::perf
