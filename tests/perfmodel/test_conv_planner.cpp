// Conv-planner unit tests: plan selection stays inside the exactness-safe
// family class, the persistent cache round-trips bitwise, any corrupted or
// stale file is discarded whole (with a replan, never a crash), and kOff
// reduces to the PR-1 heuristic.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "kernels/conv.hpp"
#include "perf/conv_planner.hpp"
#include "support/crc32.hpp"

namespace distconv::perf {
namespace {

using kernels::ConvAlgo;
using kernels::ConvParams;
using kernels::ConvPass;
using kernels::ConvPlan;

/// Fresh planner state per test: empty in-memory cache, no persistent file,
/// model mode, winograd off.
struct PlannerReset {
  static void reset() {
    set_conv_plan_cache_path("");
    clear_conv_plan_cache();
    set_conv_plan_mode(ConvPlanMode::kModel);
    set_conv_winograd_enabled(false);
  }
  PlannerReset() { reset(); }
  ~PlannerReset() { reset(); }
};

std::string temp_cache_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dc_plan_cache_") + tag + ".txt"))
      .string();
}

ConvPlanKey key_of(ConvPass pass, std::int64_t c, std::int64_t f,
                   const ConvParams& p) {
  ConvPlanKey key;
  key.pass = pass;
  key.c = c;
  key.f = f;
  key.p = p;
  return key;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ConvPlanner, SelectionStaysInLegacyFamilyClass) {
  PlannerReset reset;
  // A shallow layer the heuristic runs direct: the planner must not cross
  // to a GEMM family (rank-sliced keys could disagree with the oracle's).
  const ConvParams shallow{3, 3, 1, 1, 1, 1};
  const ConvPlan direct_plan =
      conv_plan_for(ConvPass::kForward, shallow, /*c=*/2, /*f=*/4);
  EXPECT_EQ(direct_plan.algo, ConvAlgo::kDirect);

  // A deep 1×1 layer the heuristic runs im2col: gemm-strips (bitwise equal)
  // may and should take over, since it drops the pack entirely.
  const ConvParams one{1, 1, 1, 1, 0, 0};
  const ConvPlan gemm_plan =
      conv_plan_for(ConvPass::kForward, one, /*c=*/512, /*f=*/128);
  EXPECT_EQ(gemm_plan.algo, ConvAlgo::kGemmStrips);

  // A deep 3×3 layer stays in the im2col family while winograd is off…
  const ConvParams deep3{3, 3, 1, 1, 1, 1};
  EXPECT_EQ(conv_plan_for(ConvPass::kForward, deep3, 128, 128).algo,
            ConvAlgo::kIm2col);
}

TEST(ConvPlanner, WinogradRequiresOptIn) {
  PlannerReset reset;
  const ConvParams deep3{3, 3, 1, 1, 1, 1};
  set_conv_winograd_enabled(true);
  // With the opt-in, the forward candidate set includes winograd and the
  // model prefers its 16/36 multiply count on a deep square layer.
  const ConvPlan plan = conv_plan_for(ConvPass::kForward, deep3, 128, 128);
  EXPECT_EQ(plan.algo, ConvAlgo::kWinograd);
  // Backward passes have no winograd kernel: never proposed.
  EXPECT_NE(conv_plan_for(ConvPass::kBackwardData, deep3, 128, 128).algo,
            ConvAlgo::kWinograd);
  EXPECT_NE(conv_plan_for(ConvPass::kBackwardFilter, deep3, 128, 128).algo,
            ConvAlgo::kWinograd);
}

TEST(ConvPlanner, OffModeIsTheLegacyHeuristic) {
  PlannerReset reset;
  set_conv_plan_mode(ConvPlanMode::kOff);
  const ConvParams one{1, 1, 1, 1, 0, 0};
  const ConvPlan plan = conv_plan_for(ConvPass::kForward, one, 512, 128);
  EXPECT_EQ(plan.algo,
            kernels::resolve_conv_algo(ConvAlgo::kAuto, one, 512, 128));
  EXPECT_EQ(plan.strip_elems, 0);
  EXPECT_EQ(plan.thread_cap, 0);
  EXPECT_EQ(conv_plan_cache_size(), 0u);  // off mode touches no cache
}

TEST(ConvPlanner, CacheHitsAreStable) {
  PlannerReset reset;
  const ConvParams one{1, 1, 1, 1, 0, 0};
  const ConvPlan a = conv_plan_for(ConvPass::kBackwardFilter, one, 512, 128);
  const std::size_t after_first = conv_plan_cache_size();
  const ConvPlan b = conv_plan_for(ConvPass::kBackwardFilter, one, 512, 128);
  EXPECT_EQ(conv_plan_cache_size(), after_first);  // hit, no second entry
  EXPECT_EQ(a.algo, b.algo);
  EXPECT_EQ(a.strip_elems, b.strip_elems);
  EXPECT_EQ(a.thread_cap, b.thread_cap);
  EXPECT_EQ(a.numa_node, b.numa_node);
}

TEST(ConvPlanner, PersistentCacheRoundTrips) {
  PlannerReset reset;
  const std::string path = temp_cache_path("roundtrip");
  std::filesystem::remove(path);
  set_conv_plan_cache_path(path);

  const ConvParams one{1, 1, 1, 1, 0, 0};
  const ConvParams deep3{3, 3, 1, 1, 1, 1};
  const ConvPlan p1 = conv_plan_for(ConvPass::kForward, one, 512, 128);
  const ConvPlan p2 = conv_plan_for(ConvPass::kBackwardData, deep3, 64, 96);
  const ConvPlan p3 = conv_plan_for(ConvPass::kBackwardFilter, one, 512, 128);
  ASSERT_EQ(conv_plan_cache_size(), 3u);  // write-through saved each insert

  // A second planner life (same path): plans come back bitwise identical.
  clear_conv_plan_cache();
  EXPECT_EQ(conv_plan_cache_size(), 0u);
  const ConvPlan q1 = conv_plan_for(ConvPass::kForward, one, 512, 128);
  EXPECT_EQ(conv_plan_cache_size(), 3u);  // the file filled the whole cache
  const ConvPlan q2 = conv_plan_for(ConvPass::kBackwardData, deep3, 64, 96);
  const ConvPlan q3 = conv_plan_for(ConvPass::kBackwardFilter, one, 512, 128);
  for (const auto& [fresh, loaded] :
       {std::pair{p1, q1}, std::pair{p2, q2}, std::pair{p3, q3}}) {
    EXPECT_EQ(fresh.algo, loaded.algo);
    EXPECT_EQ(fresh.strip_elems, loaded.strip_elems);
    EXPECT_EQ(fresh.thread_cap, loaded.thread_cap);
    EXPECT_EQ(fresh.numa_node, loaded.numa_node);
  }
  std::filesystem::remove(path);
}

TEST(ConvPlanner, EverySingleBitFlipDiscardsTheFile) {
  PlannerReset reset;
  const std::string path = temp_cache_path("fuzz");
  std::filesystem::remove(path);
  set_conv_plan_cache_path(path);
  const ConvParams one{1, 1, 1, 1, 0, 0};
  const ConvParams deep3{3, 3, 1, 1, 1, 1};
  conv_plan_for(ConvPass::kForward, one, 512, 128);
  conv_plan_for(ConvPass::kBackwardData, deep3, 64, 96);

  std::string blob = read_file(path);
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(load_conv_plan_cache(path));  // pristine file loads

  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    std::string corrupt = blob;
    corrupt[pos] ^= static_cast<char>(1u << (pos % 8));
    std::ofstream(path, std::ios::binary) << corrupt;
    EXPECT_FALSE(load_conv_plan_cache(path))
        << "bit flip at byte " << pos << " slipped through";
    EXPECT_EQ(conv_plan_cache_size(), 0u)
        << "partial load after flip at byte " << pos;
  }

  // Truncations (header cut, line cut, CRC cut) are all rejected too.
  // size-1 would only drop the trailing newline — equivalent content, and
  // accepted — so the shallowest cut removes a real CRC digit.
  for (std::size_t len : {blob.size() - 2, blob.size() / 2, std::size_t{3}}) {
    std::ofstream(path, std::ios::binary) << blob.substr(0, len);
    EXPECT_FALSE(load_conv_plan_cache(path)) << "truncation to " << len;
  }

  std::ofstream(path, std::ios::binary) << blob;
  EXPECT_TRUE(load_conv_plan_cache(path));  // restored file is pristine
  std::filesystem::remove(path);
}

TEST(ConvPlanner, StaleOrForeignEntriesInvalidateTheFile) {
  PlannerReset reset;
  const std::string path = temp_cache_path("stale");

  // A CRC-valid line whose plan its own key cannot execute (gemm-strips on
  // a 3×3 layer): validate-before-use must reject the file even though
  // every checksum passes.
  const std::string body =
      "fwd c=64 f=64 k=3x3 s=1x1 p=1x1 | algo=gemm-strips strips=0 cap=0 "
      "node=-1";
  char crc[24];
  std::snprintf(crc, sizeof(crc), " | crc=%08x",
                support::crc32(body.data(), body.size()));
  std::ofstream(path, std::ios::binary)
      << "distconv-conv-plan-cache-v1 mode=model\n"
      << body << crc << "\n";
  EXPECT_FALSE(load_conv_plan_cache(path));

  // A file written under a different planning mode is stale wholesale: its
  // plans may encode measured choices the current mode would not make.
  std::ofstream(path, std::ios::binary)
      << "distconv-conv-plan-cache-v1 mode=measure\n";
  EXPECT_FALSE(load_conv_plan_cache(path));

  // A cached key never shadows a different layer: planning a layer that is
  // not in the file misses and replans (the file only preloads its own key).
  const ConvParams one{1, 1, 1, 1, 0, 0};
  set_conv_plan_cache_path(path);
  conv_plan_for(ConvPass::kForward, one, 512, 128);
  clear_conv_plan_cache();
  conv_plan_for(ConvPass::kForward, one, 256, 64);  // different constants
  EXPECT_EQ(conv_plan_cache_size(), 2u);  // 1 loaded + 1 fresh miss
  std::filesystem::remove(path);
}

TEST(ConvPlanner, EnumerationPricesEveryApplicableFamily) {
  PlannerReset reset;
  const ConvParams one{1, 1, 1, 1, 0, 0};
  const auto cands =
      enumerate_conv_candidates(key_of(ConvPass::kForward, 512, 128, one));
  ASSERT_FALSE(cands.empty());
  bool has_direct = false, has_im2col = false, has_strips = false;
  for (const auto& c : cands) {
    has_direct = has_direct || c.plan.algo == ConvAlgo::kDirect;
    has_im2col = has_im2col || c.plan.algo == ConvAlgo::kIm2col;
    has_strips = has_strips || c.plan.algo == ConvAlgo::kGemmStrips;
    EXPECT_GT(c.model_seconds, 0.0);
  }
  EXPECT_TRUE(has_direct);
  EXPECT_TRUE(has_im2col);
  EXPECT_TRUE(has_strips);
  // Best-first ordering.
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i - 1].model_seconds, cands[i].model_seconds);
  }
}

TEST(ConvPlanner, KeyStringIsStable) {
  const ConvParams p{3, 5, 2, 1, 1, 2};
  EXPECT_EQ(key_of(ConvPass::kBackwardData, 96, 32, p).str(),
            "bwd-data c=96 f=32 k=3x5 s=2x1 p=1x2");
}

}  // namespace
}  // namespace distconv::perf
