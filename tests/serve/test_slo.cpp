// SLO admission control: the policy chooser must spend exactly the latency
// budget the cost model leaves over, degrade to greedy + shedding when the
// target is unattainable, and scale its fleet throughput prediction with
// the replica count.
#include <gtest/gtest.h>

#include "models/models.hpp"
#include "serve/slo.hpp"

namespace distconv::serve {
namespace {

const perf::MachineModel kMachine = perf::MachineModel::lassen();

TEST(Slo, AttainableTargetSpendsTheRemainingBudgetOnFill) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double latency =
      perf::inference_cost(spec, strategy, kMachine).batch_latency();
  const double target = 3.0 * latency;
  const SloDecision d = choose_serving_policy(spec, strategy, kMachine, target);
  EXPECT_TRUE(d.attainable);
  EXPECT_EQ(d.predicted_batch_latency, latency);
  // max_delay = target − L (floored to whole µs), so predicted p99 lands on
  // the target from below.
  EXPECT_NEAR(d.batcher.max_delay_us * 1e-6, target - latency, 1e-6);
  EXPECT_LE(d.predicted_p99, target);
  EXPECT_GT(d.predicted_p99, latency);
  // max_batch is the model's dispatch capacity; deadline sits at the target.
  EXPECT_EQ(d.batcher.max_batch, 4);
  EXPECT_GE(d.batcher.deadline_us * 1e-6, target);
  EXPECT_EQ(d.batcher.max_queue, 8);  // 2 × capacity
  EXPECT_EQ(d.replicas, 1);
}

TEST(Slo, UnattainableTargetDegradesToGreedyShedding) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double latency =
      perf::inference_cost(spec, strategy, kMachine).batch_latency();
  const double target = 0.25 * latency;  // below the forward alone
  const SloDecision d = choose_serving_policy(spec, strategy, kMachine, target);
  EXPECT_FALSE(d.attainable);
  // Nothing to gain from waiting: greedy dispatch, deadline at the target so
  // hopeless requests shed instead of wasting a forward.
  EXPECT_EQ(d.batcher.max_delay_us, 0);
  EXPECT_GE(d.batcher.deadline_us, 1);
  EXPECT_GT(d.predicted_p99, target);
}

TEST(Slo, FleetPredictionScalesWithReplicas) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double target = 1.0;  // generously attainable
  const SloDecision one = choose_serving_policy(spec, strategy, kMachine,
                                                target, /*replicas=*/1);
  const SloDecision four = choose_serving_policy(spec, strategy, kMachine,
                                                 target, /*replicas=*/4);
  // Same per-replica policy either way; only the fleet throughput scales.
  EXPECT_EQ(one.batcher.max_delay_us, four.batcher.max_delay_us);
  EXPECT_EQ(one.predicted_p99, four.predicted_p99);
  EXPECT_EQ(four.replicas, 4);
  EXPECT_NEAR(four.predicted_throughput, 4.0 * one.predicted_throughput,
              1e-9 * four.predicted_throughput);
}

TEST(Slo, RejectsNonsenseInputs) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, 0.0), Error);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, -1.0), Error);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, 1.0, 0), Error);
}

}  // namespace
}  // namespace distconv::serve
