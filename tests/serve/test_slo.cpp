// SLO admission control: the policy chooser must spend exactly the latency
// budget the cost model leaves over, degrade to greedy + shedding when the
// target is unattainable, and scale its fleet throughput prediction with
// the replica count.
#include <gtest/gtest.h>

#include "models/models.hpp"
#include "obs/metrics.hpp"
#include "serve/slo.hpp"

namespace distconv::serve {
namespace {

const perf::MachineModel kMachine = perf::MachineModel::lassen();

TEST(Slo, AttainableTargetSpendsTheRemainingBudgetOnFill) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double latency =
      perf::inference_cost(spec, strategy, kMachine).batch_latency();
  const double target = 3.0 * latency;
  const SloDecision d = choose_serving_policy(spec, strategy, kMachine, target);
  EXPECT_TRUE(d.attainable);
  EXPECT_EQ(d.predicted_batch_latency, latency);
  // max_delay = target − L (floored to whole µs), so predicted p99 lands on
  // the target from below.
  EXPECT_NEAR(d.batcher.max_delay_us * 1e-6, target - latency, 1e-6);
  EXPECT_LE(d.predicted_p99, target);
  EXPECT_GT(d.predicted_p99, latency);
  // max_batch is the model's dispatch capacity; deadline sits at the target.
  EXPECT_EQ(d.batcher.max_batch, 4);
  EXPECT_GE(d.batcher.deadline_us * 1e-6, target);
  EXPECT_EQ(d.batcher.max_queue, 8);  // 2 × capacity
  EXPECT_EQ(d.replicas, 1);
}

TEST(Slo, UnattainableTargetDegradesToGreedyShedding) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double latency =
      perf::inference_cost(spec, strategy, kMachine).batch_latency();
  const double target = 0.25 * latency;  // below the forward alone
  const SloDecision d = choose_serving_policy(spec, strategy, kMachine, target);
  EXPECT_FALSE(d.attainable);
  // Nothing to gain from waiting: greedy dispatch, deadline at the target so
  // hopeless requests shed instead of wasting a forward.
  EXPECT_EQ(d.batcher.max_delay_us, 0);
  EXPECT_GE(d.batcher.deadline_us, 1);
  EXPECT_GT(d.predicted_p99, target);
}

TEST(Slo, FleetPredictionScalesWithReplicas) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double target = 1.0;  // generously attainable
  const SloDecision one = choose_serving_policy(spec, strategy, kMachine,
                                                target, /*replicas=*/1);
  const SloDecision four = choose_serving_policy(spec, strategy, kMachine,
                                                 target, /*replicas=*/4);
  // Same per-replica policy either way; only the fleet throughput scales.
  EXPECT_EQ(one.batcher.max_delay_us, four.batcher.max_delay_us);
  EXPECT_EQ(one.predicted_p99, four.predicted_p99);
  EXPECT_EQ(four.replicas, 4);
  EXPECT_NEAR(four.predicted_throughput, 4.0 * one.predicted_throughput,
              1e-9 * four.predicted_throughput);
}

TEST(Slo, MeasuredLatencyOverridesTheModelAndRecordsDrift) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  const double modelled =
      perf::inference_cost(spec, strategy, kMachine).batch_latency();
  const double target = 3.0 * modelled;  // attainable on paper

  obs::metrics::set_enabled(true);
  obs::metrics::reset();

  // The machine runs 2x slower than modelled but the target still holds:
  // the chooser budgets fill delay from the *measured* latency.
  const double measured_ok = 2.0 * modelled;
  const SloDecision ok = choose_serving_policy(
      spec, strategy, kMachine, target, /*replicas=*/1, {}, nullptr,
      measured_ok);
  EXPECT_TRUE(ok.measured_override);
  EXPECT_TRUE(ok.attainable);
  EXPECT_EQ(ok.predicted_batch_latency, measured_ok);
  EXPECT_NEAR(ok.batcher.max_delay_us * 1e-6, target - measured_ok, 1e-6);
  EXPECT_LE(ok.predicted_p99, target);
  // model.drift.serve.batch.latency records measured/modelled in ppm.
  const auto snap = obs::metrics::snapshot();
  const auto it = snap.gauges.find("model.drift.serve.batch.latency");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_NEAR(static_cast<double>(it->second), 2e6, 2e6 * 1e-3);

  // Measured latency past the target: unattainable even though the model
  // says otherwise — degrade to greedy dispatch.
  const SloDecision slow = choose_serving_policy(
      spec, strategy, kMachine, target, /*replicas=*/1, {}, nullptr,
      /*measured=*/2.0 * target);
  EXPECT_TRUE(slow.measured_override);
  EXPECT_FALSE(slow.attainable);
  EXPECT_EQ(slow.batcher.max_delay_us, 0);
  EXPECT_GT(slow.predicted_p99, target);

  // No measurement: pure model, no override, no drift gauge update.
  const SloDecision modelled_only =
      choose_serving_policy(spec, strategy, kMachine, target);
  EXPECT_FALSE(modelled_only.measured_override);
  EXPECT_EQ(modelled_only.predicted_batch_latency, modelled);

  obs::metrics::set_enabled(false);
  obs::metrics::reset();
}

TEST(Slo, RejectsNonsenseInputs) {
  const auto spec = models::make_mesh_model_1k(4);
  const auto strategy = core::Strategy::hybrid(spec.size(), 16, 4);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, 0.0), Error);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, -1.0), Error);
  EXPECT_THROW(choose_serving_policy(spec, strategy, kMachine, 1.0, 0), Error);
}

}  // namespace
}  // namespace distconv::serve
