// Dynamic batching policy unit tests: max-batch cut, max-delay flush,
// greedy dispatch, FIFO order, shutdown drain, and the env knobs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "serve/batcher.hpp"

namespace distconv::serve {
namespace {

Tensor<float> sample(float fill = 0.0f) {
  Tensor<float> t(Shape4{1, 2, 4, 4});
  t.fill(fill);
  return t;
}

TEST(Batcher, FullBatchDispatchesImmediately) {
  BatcherOptions opts;
  opts.max_batch = 3;
  opts.max_delay_us = 1000000;  // a full second: must not be waited out
  Batcher b(opts);
  for (int i = 0; i < 5; ++i) b.push(sample());
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch(/*limit=*/8);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_LT(waited, 0.5);  // did not sit out the max delay
  EXPECT_EQ(b.pending(), 2u);
}

TEST(Batcher, ModelCapacityCapsBelowMaxBatch) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  Batcher b(opts);
  for (int i = 0; i < 5; ++i) b.push(sample());
  EXPECT_EQ(b.next_batch(/*limit=*/2).size(), 2u);
}

TEST(Batcher, MaxDelayFlushesPartialBatch) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 30000;  // 30 ms
  Batcher b(opts);
  b.push(sample());
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch(8);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(waited, 0.025);  // held for roughly the configured delay
}

TEST(Batcher, GreedyPolicyDispatchesWhatIsQueued) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  Batcher b(opts);
  b.push(sample());
  b.push(sample());
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch(8);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_LT(waited, 0.02);
}

TEST(Batcher, FifoOrderAndIds) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 0;
  Batcher b(opts);
  for (int i = 0; i < 4; ++i) b.push(sample(float(i)));
  const auto batch = b.next_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  // Ids are minted from a fleet-global counter (so request traces are
  // unique across every batcher in the process); within one queue they
  // are consecutive and FIFO.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].id, batch[0].id + i);
    EXPECT_EQ(batch[i].input.data()[0], float(i));
  }
}

TEST(Batcher, NewArrivalFillsBatchBeforeDeadline) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.max_delay_us = 500000;  // half a second
  Batcher b(opts);
  b.push(sample());
  std::thread late([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.push(sample());
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = b.next_batch(8);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  late.join();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_LT(waited, 0.4);  // woke on the second arrival, not the deadline
}

TEST(Batcher, CloseDrainsThenSignalsShutdown) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.max_delay_us = 1000000;
  Batcher b(opts);
  for (int i = 0; i < 3; ++i) b.push(sample());
  b.close();
  EXPECT_EQ(b.next_batch(8).size(), 2u);
  EXPECT_EQ(b.next_batch(8).size(), 1u);
  EXPECT_TRUE(b.next_batch(8).empty());  // drained → shutdown signal
  EXPECT_THROW(b.push(sample()), Error);
}

TEST(Batcher, CloseWakesBlockedConsumer) {
  Batcher b(BatcherOptions{});
  std::thread closer([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.close();
  });
  EXPECT_TRUE(b.next_batch(8).empty());
  closer.join();
}

TEST(Batcher, EnvKnobsParse) {
  setenv("DC_SERVE_MAX_BATCH", "17", 1);
  setenv("DC_SERVE_MAX_DELAY_US", "2500", 1);
  setenv("DC_SERVE_MAX_QUEUE", "99", 1);
  setenv("DC_SERVE_DEADLINE_US", "7000", 1);
  const BatcherOptions opts = batcher_options_from_env();
  EXPECT_EQ(opts.max_batch, 17);
  EXPECT_EQ(opts.max_delay_us, 2500);
  EXPECT_EQ(opts.max_queue, 99);
  EXPECT_EQ(opts.deadline_us, 7000);
  setenv("DC_SERVE_MAX_BATCH", "not-a-number", 1);
  setenv("DC_SERVE_MAX_QUEUE", "-4", 1);
  unsetenv("DC_SERVE_MAX_DELAY_US");
  unsetenv("DC_SERVE_DEADLINE_US");
  const BatcherOptions fallback = batcher_options_from_env();
  EXPECT_EQ(fallback.max_batch, BatcherOptions{}.max_batch);
  EXPECT_EQ(fallback.max_delay_us, BatcherOptions{}.max_delay_us);
  EXPECT_EQ(fallback.max_queue, BatcherOptions{}.max_queue);
  EXPECT_EQ(fallback.deadline_us, BatcherOptions{}.deadline_us);
  unsetenv("DC_SERVE_MAX_BATCH");
  unsetenv("DC_SERVE_MAX_QUEUE");
}

TEST(Batcher, AdmissionControlShedsWhenQueueFull) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 0;
  opts.max_queue = 2;
  Batcher b(opts);
  b.push(sample());
  b.push(sample());
  EXPECT_THROW(b.push(sample()), OverloadedError);
  EXPECT_EQ(b.shed(), 1u);
  EXPECT_EQ(b.pending(), 2u);  // queued requests are untouched
  // Draining the queue re-opens admission.
  EXPECT_EQ(b.next_batch(8).size(), 2u);
  b.push(sample());
  EXPECT_EQ(b.shed(), 1u);
}

TEST(Batcher, ZeroMaxQueueIsUnbounded) {
  BatcherOptions opts;
  opts.max_queue = 0;
  opts.max_delay_us = 0;
  Batcher b(opts);
  for (int i = 0; i < 64; ++i) b.push(sample());
  EXPECT_EQ(b.pending(), 64u);
  EXPECT_EQ(b.shed(), 0u);
}

TEST(Batcher, ExpiredRequestsFailAtPopAndFreshOnesDispatch) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  opts.deadline_us = 20000;  // 20 ms
  Batcher b(opts);
  auto stale1 = b.push(sample(1.0f));
  auto stale2 = b.push(sample(2.0f));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  auto fresh = b.push(sample(3.0f));
  const auto batch = b.next_batch(8);
  ASSERT_EQ(batch.size(), 1u);  // only the fresh request dispatches
  EXPECT_EQ(batch[0].input.data()[0], 3.0f);
  EXPECT_EQ(b.expired(), 2u);
  EXPECT_THROW(stale1.get(), DeadlineExceededError);
  EXPECT_THROW(stale2.get(), DeadlineExceededError);
  EXPECT_TRUE(fresh.valid());  // still waiting on the server
}

TEST(Batcher, AllExpiredKeepsServerAliveUntilFreshArrival) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  opts.deadline_us = 10000;  // 10 ms
  Batcher b(opts);
  auto stale = b.push(sample(1.0f));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread producer([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.push(sample(9.0f));
  });
  // The consumer must not return an empty batch (that means shutdown): it
  // expires the stale prefix and keeps waiting for live work.
  const auto batch = b.next_batch(8);
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].input.data()[0], 9.0f);
  EXPECT_EQ(b.expired(), 1u);
  EXPECT_THROW(stale.get(), DeadlineExceededError);
}

TEST(Batcher, SweepExpiredFailsStaleEntriesWithoutPopping) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  opts.deadline_us = 10000;  // 10 ms
  Batcher b(opts);
  auto stale = b.push(sample(1.0f));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The router runs this sweep on every enqueue: expiry must not wait for a
  // pop on an idle replica whose loop is parked between batches.
  b.sweep_expired();
  EXPECT_EQ(b.expired(), 1u);
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_THROW(stale.get(), DeadlineExceededError);
  // Live entries survive the sweep untouched.
  auto fresh = b.push(sample(2.0f));
  b.sweep_expired();
  EXPECT_EQ(b.pending(), 1u);
  EXPECT_TRUE(fresh.valid());
}

TEST(Batcher, TakeReadyIsGreedyAndNonBlocking) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 1000000;  // a full second: take_ready must not wait it
  Batcher b(opts);
  EXPECT_TRUE(b.take_ready(8).empty());  // empty ≠ shutdown
  EXPECT_FALSE(b.closed());
  for (int i = 0; i < 3; ++i) b.push(sample(float(i)));
  const auto t0 = std::chrono::steady_clock::now();
  const auto got = b.take_ready(2);  // caller limit caps below max_batch
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_LT(waited, 0.2);
  EXPECT_EQ(got[0].input.data()[0], 0.0f);  // FIFO
  EXPECT_EQ(b.pending(), 1u);
  EXPECT_EQ(b.take_ready(8).size(), 1u);
}

TEST(Batcher, PushRecordsPassesAndRejectsNonPositive) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_delay_us = 0;
  Batcher b(opts);
  b.push(sample(), /*passes=*/3);
  b.push(sample());  // defaults to 1
  const auto batch = b.next_batch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].passes, 3);
  EXPECT_EQ(batch[1].passes, 1);
  EXPECT_THROW(b.push(sample(), 0), Error);
}

TEST(Batcher, CloseAfterExpiryStillSignalsShutdown) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_delay_us = 0;
  opts.deadline_us = 5000;  // 5 ms
  Batcher b(opts);
  auto stale = b.push(sample());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.close();
  EXPECT_TRUE(b.next_batch(8).empty());  // expired + drained → shutdown
  EXPECT_EQ(b.expired(), 1u);
  EXPECT_THROW(stale.get(), DeadlineExceededError);
}

}  // namespace
}  // namespace distconv::serve
