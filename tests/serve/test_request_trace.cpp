// Per-request distributed tracing: every request id minted at submit must
// be conserved through the batcher, the replica forward and the response
// scatter — each queued id resolves exactly once as done, expired or
// failed; shed ids never enter the queue — and the per-stage latency
// histograms must account for every served request.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/router.hpp"
#include "support/json.hpp"

namespace distconv::serve {
namespace {

namespace fs = std::filesystem;
using core::Model;
using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;
using support::json::Value;

constexpr int kClasses = 6;
constexpr std::int64_t kBatch = 4;

NetworkSpec classifier_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{kBatch, 3, 16, 16});
  int x = nb.conv_bn_relu("b1", in, 8, 3);
  x = nb.pool_max("pool", x, 3, 2, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3);
  x = nb.global_avg_pool("gap", x);
  nb.fully_connected("fc", x, kClasses, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_sample(std::uint64_t seed) {
  Tensor<float> t(Shape4{1, 3, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

/// One trained checkpoint blob shared by every test in this file (the
/// predictions themselves are test_router's concern; here the model is just
/// cargo for the request ids).
const std::string& trained_blob() {
  static const std::string blob = [] {
    std::string out_blob;
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = classifier_net();
      Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
      const Shape4 in_shape = model.rt(0).out_shape;
      Rng rng(23);
      for (int step = 0; step < 2; ++step) {
        Tensor<float> x(in_shape);
        x.fill_uniform(rng, -1.0f, 1.0f);
        std::vector<int> labels;
        for (std::int64_t n = 0; n < in_shape.n; ++n) {
          labels.push_back(static_cast<int>(rng.uniform() * kClasses) %
                           kClasses);
        }
        model.set_input(0, x);
        model.forward();
        model.loss_softmax(labels);
        model.backward();
        model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
      }
      std::ostringstream out;
      core::save_checkpoint(model, out);
      out_blob = out.str();
    });
    return out_blob;
  }();
  return blob;
}

FleetModel fleet_model(int group_ranks, int replicas) {
  NetworkSpec spec = classifier_net();
  FleetModel fm;
  fm.tag = "m";
  fm.strategy = Strategy::sample_parallel(spec.size(), group_ranks);
  fm.spec = std::move(spec);
  fm.checkpoint = trained_blob();
  fm.opts.batcher.max_batch = static_cast<int>(kBatch);
  fm.opts.batcher.max_delay_us = 500;
  fm.opts.top_k = 3;
  fm.replicas = replicas;
  return fm;
}

/// Tests flip the process-global collection switches; restore the default.
struct ObsCleanup {
  ObsCleanup() {
    (void)trained_blob();  // train before instrumentation turns on
    obs::metrics::set_enabled(true);
    obs::trace::set_enabled(true);
    obs::metrics::reset();
    obs::trace::reset();
  }
  ~ObsCleanup() {
    obs::trace::set_enabled(false);
    obs::metrics::set_enabled(false);
    obs::trace::reset();
    obs::metrics::reset();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Dump the trace and collect, per event name, every "req" argument value
/// across all rank and process files.
std::map<std::string, std::multiset<std::uint64_t>> collect_req_events(
    const std::string& dir) {
  fs::remove_all(dir);
  obs::trace::dump(dir);
  std::map<std::string, std::multiset<std::uint64_t>> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const Value root = support::json::parse(read_file(entry.path().string()));
    for (const Value& ev : root.at("traceEvents").array) {
      const Value* args = ev.find("args");
      if (args == nullptr) continue;
      const Value* req = args->find("req");
      if (req == nullptr || !req->is_number()) continue;
      out[ev.at("name").string].insert(
          static_cast<std::uint64_t>(req->number));
    }
  }
  fs::remove_all(dir);
  return out;
}

std::set<std::uint64_t> unique_ids(const std::multiset<std::uint64_t>& ids) {
  return std::set<std::uint64_t>(ids.begin(), ids.end());
}

TEST(RequestTrace, ServedIdsFlowQueuedToDispatchToDoneExactlyOnce) {
  ObsCleanup cleanup;
  constexpr int kRequests = 8;

  Router router;
  router.add_model(fleet_model(/*group_ranks=*/2, /*replicas=*/2));
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(router.submit("m", make_sample(500 + i)));
  }
  std::thread client([&] {
    for (auto& f : futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  const auto events = collect_req_events("/tmp/distconv_req_trace_served");
  ASSERT_EQ(events.count("serve.req.queued"), 1u);
  const auto& queued = events.at("serve.req.queued");
  EXPECT_EQ(queued.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(unique_ids(queued).size(), static_cast<std::size_t>(kRequests));
  // Every queued id dispatches exactly once and completes exactly once.
  EXPECT_EQ(events.at("serve.req.dispatch"), queued);
  EXPECT_EQ(events.at("serve.req.done"), queued);
  EXPECT_EQ(events.count("serve.req.shed"), 0u);
  EXPECT_EQ(events.count("serve.req.expired"), 0u);
  EXPECT_EQ(events.count("serve.req.failed"), 0u);

  // The stage breakdown accounts for every served request, on both
  // replicas' histogram sets combined.
  const obs::metrics::Snapshot snap = obs::metrics::snapshot();
  for (const char* stage :
       {"stage.queue_us", "stage.batch_wait_us", "stage.forward_us",
        "stage.respond_us"}) {
    std::uint64_t count = 0;
    for (const auto& [rank, hists] : snap.histograms) {
      (void)rank;
      for (int g = 0; g < 2; ++g) {
        const auto it =
            hists.find(replica_metric_prefix(g) + "." + stage);
        if (it != hists.end()) count += it->second.count;
      }
    }
    EXPECT_EQ(count, static_cast<std::uint64_t>(kRequests)) << stage;
  }
}

TEST(RequestTrace, ShedIdsNeverEnterTheQueue) {
  ObsCleanup cleanup;

  FleetModel fm = fleet_model(/*group_ranks=*/2, /*replicas=*/1);
  fm.opts.batcher.max_queue = 2;
  Router router;
  router.add_model(std::move(fm));

  std::vector<std::future<InferenceResult>> futures;
  int shed_count = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      futures.push_back(router.submit("m", make_sample(600 + i)));
    } catch (const OverloadedError&) {
      ++shed_count;
    }
  }
  EXPECT_EQ(shed_count, 3);  // queue capped at 2, the other 3 rejected

  std::thread client([&] {
    for (auto& f : futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  const auto events = collect_req_events("/tmp/distconv_req_trace_shed");
  const auto& queued = events.at("serve.req.queued");
  const auto& shed = events.at("serve.req.shed");
  EXPECT_EQ(queued.size(), 2u);
  EXPECT_EQ(shed.size(), 3u);
  // Shed ids are real fleet ids, but disjoint from everything downstream.
  for (const std::uint64_t id : shed) {
    EXPECT_EQ(queued.count(id), 0u);
  }
  EXPECT_EQ(events.at("serve.req.done"), queued);
  EXPECT_EQ(events.count("serve.req.failed"), 0u);
}

TEST(RequestTrace, ExpiredIdsResolveAsExpiredNotDone) {
  ObsCleanup cleanup;

  FleetModel fm = fleet_model(/*group_ranks=*/2, /*replicas=*/1);
  fm.opts.batcher.deadline_us = 1000;  // 1 ms: expire before serving starts
  Router router;
  router.add_model(std::move(fm));

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(router.submit("m", make_sample(700 + i)));
  }
  // Let every queued request outlive its deadline before a loop ever runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::thread client([&] {
    for (auto& f : futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  int expired_count = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const DeadlineExceededError&) {
      ++expired_count;
    }
  }
  EXPECT_EQ(expired_count, 4);

  const auto events = collect_req_events("/tmp/distconv_req_trace_expired");
  const auto& queued = events.at("serve.req.queued");
  EXPECT_EQ(queued.size(), 4u);
  EXPECT_EQ(events.at("serve.req.expired"), queued);
  EXPECT_EQ(events.count("serve.req.done"), 0u);
  EXPECT_EQ(events.count("serve.req.dispatch"), 0u);
}

TEST(RequestTrace, KilledReplicaIdsResolveAsFailedSurvivorsAsDone) {
  ObsCleanup cleanup;

  Router router;
  router.add_model(fleet_model(/*group_ranks=*/2, /*replicas=*/2));

  // Depth balancing alternates groups: 3 requests land on each. Poisoning
  // replica 1 pre-serve fails its queue; replica 0 serves its share.
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router.submit("m", make_sample(800 + i)));
  }
  router.kill_replica("m", 1);

  std::thread client([&] {
    for (auto& f : futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  int served = 0, killed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++served;
    } catch (const ReplicaKilledError&) {
      ++killed;
    }
  }
  EXPECT_EQ(served, 3);
  EXPECT_EQ(killed, 3);

  const auto events = collect_req_events("/tmp/distconv_req_trace_killed");
  const auto& queued = events.at("serve.req.queued");
  const auto& done = events.at("serve.req.done");
  const auto& failed = events.at("serve.req.failed");
  EXPECT_EQ(queued.size(), 6u);
  EXPECT_EQ(done.size(), 3u);
  EXPECT_EQ(failed.size(), 3u);
  // Conservation: done and failed partition the queued ids.
  std::multiset<std::uint64_t> resolved = done;
  resolved.insert(failed.begin(), failed.end());
  EXPECT_EQ(resolved, queued);
}

}  // namespace
}  // namespace distconv::serve
