// Continuous batching exactness: slot-refill dispatch must resolve every
// request to the same bitwise top-k as the strict barrier (and the
// single-rank oracle), with zero-padded refill slots provably inert, both
// with and without the double-buffered prefetch, and with variable-cost
// (multi-pass) requests freeing slots independently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "serve/server.hpp"

namespace distconv::serve {
namespace {

using core::Model;
using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;

constexpr int kClasses = 6;
constexpr std::int64_t kBatch = 4;

NetworkSpec classifier_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{kBatch, 3, 16, 16});
  int x = nb.conv_bn_relu("b1", in, 8, 3);
  x = nb.pool_max("pool", x, 3, 2, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3);
  x = nb.global_avg_pool("gap", x);
  x = nb.fully_connected("fc", x, kClasses, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_sample(std::uint64_t seed) {
  Tensor<float> t(Shape4{1, 3, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> clone(const Tensor<float>& t) {
  Tensor<float> copy(t.shape());
  std::copy(t.data(), t.data() + t.size(), copy.data());
  return copy;
}

struct Oracle {
  std::string blob;
  std::vector<std::vector<Prediction>> topk;
};

Oracle run_oracle(const std::vector<Tensor<float>>& samples, int top_k) {
  Oracle oracle;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    Rng rng(23);
    for (int step = 0; step < 3; ++step) {
      Tensor<float> x(in_shape);
      x.fill_uniform(rng, -1.0f, 1.0f);
      std::vector<int> labels;
      for (std::int64_t n = 0; n < in_shape.n; ++n) {
        labels.push_back(static_cast<int>(rng.uniform() * kClasses) % kClasses);
      }
      model.set_input(0, x);
      model.forward();
      model.loss_softmax(labels);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    std::ostringstream out;
    core::save_checkpoint(model, out);
    oracle.blob = out.str();
    for (const auto& s : samples) {
      Tensor<float> input(in_shape);
      input.zero();
      std::copy(s.data(), s.data() + s.size(), input.data());
      model.set_input(0, input);
      model.forward(core::Mode::kInference);
      const Tensor<float> logits = model.gather_output(model.output_layer());
      oracle.topk.push_back(topk_softmax(logits.data(), kClasses, 3));
    }
  });
  return oracle;
}

/// Serve `samples` (with per-request pass counts) through a 4-rank server
/// under `opts` and return each request's result. Staggered submission
/// exercises partial batches and mid-flight refills.
std::vector<InferenceResult> serve_all(
    const ServeOptions& opts, const std::string& blob,
    const std::vector<Tensor<float>>& samples, const std::vector<int>& passes,
    ServerStats* stats_out = nullptr, int stagger_us = 300) {
  Server server(opts);
  std::vector<std::future<InferenceResult>> futures(samples.size());
  std::thread client([&] {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      futures[i] = server.submit(clone(samples[i]),
                                 passes.empty() ? 1 : passes[i]);
      if (stagger_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(stagger_us));
      }
    }
    for (auto& f : futures) f.wait();
    server.shutdown();
  });
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 4), 21);
    std::istringstream in(blob);
    core::load_checkpoint(model, in);
    server.serve(model);
  });
  client.join();
  std::vector<InferenceResult> results;
  for (auto& f : futures) results.push_back(f.get());
  if (stats_out != nullptr) *stats_out = server.stats();
  return results;
}

void expect_bitwise(const std::vector<InferenceResult>& got,
                    const Oracle& oracle) {
  ASSERT_EQ(got.size(), oracle.topk.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].topk.size(), oracle.topk[i].size()) << "request " << i;
    for (std::size_t k = 0; k < got[i].topk.size(); ++k) {
      EXPECT_EQ(got[i].topk[k].cls, oracle.topk[i][k].cls)
          << "request " << i << " rank " << k;
      EXPECT_EQ(got[i].topk[k].prob, oracle.topk[i][k].prob)
          << "request " << i << " rank " << k;
    }
  }
}

TEST(Continuous, RefilledSlotsMatchOracleAndStrictBitwise) {
  constexpr int kRequests = 14;
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < kRequests; ++i) samples.push_back(make_sample(600 + i));
  const Oracle oracle = run_oracle(samples, 3);

  ServeOptions strict;
  strict.batcher.max_batch = static_cast<int>(kBatch);
  strict.batcher.max_delay_us = 300;
  strict.top_k = 3;

  ServeOptions continuous = strict;
  continuous.continuous = true;

  ServerStats strict_stats, cont_stats;
  const auto strict_res =
      serve_all(strict, oracle.blob, samples, {}, &strict_stats);
  const auto cont_res =
      serve_all(continuous, oracle.blob, samples, {}, &cont_stats);

  // Both disciplines resolve to the oracle bitwise: refilled neighbour slots
  // and zero padding are inert under per-sample eval-mode operators.
  expect_bitwise(strict_res, oracle);
  expect_bitwise(cont_res, oracle);
  EXPECT_EQ(strict_stats.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(cont_stats.requests, static_cast<std::uint64_t>(kRequests));
}

TEST(Continuous, MultiPassRequestsHoldSlotsWhileNeighboursTurnOver) {
  constexpr int kRequests = 8;
  std::vector<Tensor<float>> samples;
  std::vector<int> passes;
  for (int i = 0; i < kRequests; ++i) {
    samples.push_back(make_sample(1200 + i));
    passes.push_back(i % 3 == 0 ? 4 : 1);  // a few expensive requests
  }
  const Oracle oracle = run_oracle(samples, 3);

  ServeOptions opts;
  opts.continuous = true;
  opts.batcher.max_batch = static_cast<int>(kBatch);
  opts.batcher.max_delay_us = 200;
  opts.top_k = 3;

  ServerStats stats;
  const auto results = serve_all(opts, oracle.blob, samples, passes, &stats);
  // Repeating a forward on unchanged inputs recomputes identical logits, so
  // multi-pass requests are bitwise-identical to their single-pass oracle.
  expect_bitwise(results, oracle);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
  // An expensive request burns one forward per pass; the iteration count
  // (batches) must at least cover the costliest request.
  EXPECT_GE(stats.batches, 4u);
}

TEST(Continuous, StrictMultiPassBarrierMatchesOracle) {
  constexpr int kRequests = 6;
  std::vector<Tensor<float>> samples;
  std::vector<int> passes;
  for (int i = 0; i < kRequests; ++i) {
    samples.push_back(make_sample(1500 + i));
    passes.push_back(i % 2 == 0 ? 2 : 1);
  }
  const Oracle oracle = run_oracle(samples, 3);
  ServeOptions opts;
  opts.batcher.max_batch = static_cast<int>(kBatch);
  opts.batcher.max_delay_us = 300;
  opts.top_k = 3;
  const auto results = serve_all(opts, oracle.blob, samples, passes);
  expect_bitwise(results, oracle);
}

TEST(Continuous, DoubleBufferOffMatchesPrefetchedPath) {
  constexpr int kRequests = 10;
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < kRequests; ++i) samples.push_back(make_sample(1800 + i));
  const Oracle oracle = run_oracle(samples, 3);
  ServeOptions opts;
  opts.batcher.max_batch = static_cast<int>(kBatch);
  opts.batcher.max_delay_us = 200;
  opts.top_k = 3;
  opts.double_buffer = false;
  const auto plain = serve_all(opts, oracle.blob, samples, {});
  opts.double_buffer = true;
  const auto prefetched = serve_all(opts, oracle.blob, samples, {});
  expect_bitwise(plain, oracle);
  expect_bitwise(prefetched, oracle);
}

TEST(Continuous, EnvKnobsParse) {
  setenv("DC_SERVE_CONTINUOUS", "1", 1);
  setenv("DC_SERVE_DOUBLE_BUFFER", "0", 1);
  setenv("DC_SERVE_REPLICAS", "3", 1);
  setenv("DC_SERVE_SLO_P99_US", "25000", 1);
  const ServeOptions opts = serve_options_from_env();
  EXPECT_TRUE(opts.continuous);
  EXPECT_FALSE(opts.double_buffer);
  EXPECT_EQ(opts.replicas, 3);
  EXPECT_EQ(opts.slo_p99_us, 25000);
  unsetenv("DC_SERVE_CONTINUOUS");
  unsetenv("DC_SERVE_DOUBLE_BUFFER");
  unsetenv("DC_SERVE_REPLICAS");
  unsetenv("DC_SERVE_SLO_P99_US");
  const ServeOptions defaults = serve_options_from_env();
  EXPECT_FALSE(defaults.continuous);
  EXPECT_TRUE(defaults.double_buffer);
  EXPECT_EQ(defaults.replicas, 1);
  EXPECT_EQ(defaults.slo_p99_us, 0);
}

}  // namespace
}  // namespace distconv::serve
