// Fleet router correctness: tag routing across two models, replica-group
// responses bitwise equal to the single-rank oracle, deterministic
// queue-depth balancing, and failure isolation — killing one replica group
// fails only its own queued requests while the surviving group keeps
// serving.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "serve/router.hpp"

namespace distconv::serve {
namespace {

using core::Model;
using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;

constexpr int kClasses = 6;
constexpr std::int64_t kBatch = 4;

NetworkSpec classifier_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{kBatch, 3, 16, 16});
  int x = nb.conv_bn_relu("b1", in, 8, 3);
  x = nb.pool_max("pool", x, 3, 2, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3);
  x = nb.global_avg_pool("gap", x);
  x = nb.fully_connected("fc", x, kClasses, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_sample(std::uint64_t seed) {
  Tensor<float> t(Shape4{1, 3, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> clone(const Tensor<float>& t) {
  Tensor<float> copy(t.shape());
  std::copy(t.data(), t.data() + t.size(), copy.data());
  return copy;
}

/// Train for a few steps from `train_seed`, checkpoint, and score each
/// sample alone: the bitwise reference. Different train seeds produce
/// different weights, so two oracles distinguish tag routing.
struct TrainedOracle {
  std::string blob;
  std::vector<std::vector<Prediction>> topk;
};

TrainedOracle train_oracle(std::uint64_t train_seed,
                           const std::vector<Tensor<float>>& samples,
                           int top_k) {
  TrainedOracle oracle;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    Rng rng(train_seed);
    for (int step = 0; step < 3; ++step) {
      Tensor<float> x(in_shape);
      x.fill_uniform(rng, -1.0f, 1.0f);
      std::vector<int> labels;
      for (std::int64_t n = 0; n < in_shape.n; ++n) {
        labels.push_back(static_cast<int>(rng.uniform() * kClasses) % kClasses);
      }
      model.set_input(0, x);
      model.forward();
      model.loss_softmax(labels);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    std::ostringstream out;
    core::save_checkpoint(model, out);
    oracle.blob = out.str();

    for (const auto& s : samples) {
      Tensor<float> input(in_shape);
      input.zero();
      std::copy(s.data(), s.data() + s.size(), input.data());
      model.set_input(0, input);
      model.forward(core::Mode::kInference);
      const Tensor<float> logits = model.gather_output(model.output_layer());
      oracle.topk.push_back(topk_softmax(logits.data(), kClasses, top_k));
    }
  });
  return oracle;
}

void expect_bitwise(const InferenceResult& res,
                    const std::vector<Prediction>& want, std::size_t i) {
  ASSERT_EQ(res.topk.size(), want.size()) << "request " << i;
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(res.topk[k].cls, want[k].cls) << "request " << i << " rank " << k;
    EXPECT_EQ(res.topk[k].prob, want[k].prob)
        << "request " << i << " rank " << k;
  }
}

FleetModel fleet_model(const std::string& tag, const std::string& blob,
                       int group_ranks, int replicas) {
  NetworkSpec spec = classifier_net();
  FleetModel fm;
  fm.tag = tag;
  fm.strategy = Strategy::sample_parallel(spec.size(), group_ranks);
  fm.spec = std::move(spec);
  fm.checkpoint = blob;
  fm.opts.batcher.max_batch = static_cast<int>(kBatch);
  fm.opts.batcher.max_delay_us = 500;
  fm.opts.top_k = 3;
  fm.replicas = replicas;
  return fm;
}

TEST(Router, RoutesByTagToTheRightModelBitwise) {
  constexpr int kRequests = 8;
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < kRequests; ++i) samples.push_back(make_sample(400 + i));
  // Two differently-trained checkpoints of the same net: a misrouted
  // request would come back with the other model's (different) logits.
  const TrainedOracle oracle_a = train_oracle(17, samples, 3);
  const TrainedOracle oracle_b = train_oracle(91, samples, 3);
  ASSERT_NE(oracle_a.topk[0][0].prob, oracle_b.topk[0][0].prob);

  Router router;
  router.add_model(fleet_model("model-a", oracle_a.blob, 2, 1));
  router.add_model(fleet_model("model-b", oracle_b.blob, 2, 1));
  ASSERT_EQ(router.total_ranks(), 4);

  std::vector<std::future<InferenceResult>> fut_a, fut_b;
  for (const auto& s : samples) {
    fut_a.push_back(router.submit("model-a", clone(s)));
    fut_b.push_back(router.submit("model-b", clone(s)));
  }
  EXPECT_THROW(router.submit("no-such-tag", make_sample(1)), Error);

  std::thread client([&] {
    for (auto& f : fut_a) f.wait();
    for (auto& f : fut_b) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_bitwise(fut_a[i].get(), oracle_a.topk[i], i);
    expect_bitwise(fut_b[i].get(), oracle_b.topk[i], i);
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed, static_cast<std::uint64_t>(2 * kRequests));
  ASSERT_EQ(stats.models.size(), 2u);
  EXPECT_EQ(stats.models[0].replicas[0].requests,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.models[1].replicas[0].requests,
            static_cast<std::uint64_t>(kRequests));
}

TEST(Router, TwoReplicasBalanceByQueueDepthAndMatchOracleBitwise) {
  constexpr int kRequests = 10;
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < kRequests; ++i) samples.push_back(make_sample(700 + i));
  const TrainedOracle oracle = train_oracle(29, samples, 3);

  Router router;
  router.add_model(fleet_model("m", oracle.blob, 2, /*replicas=*/2));
  ASSERT_EQ(router.total_ranks(), 4);

  // Submitting before serve() starts makes balancing deterministic: queues
  // only grow, so depth routing alternates groups request by request.
  std::vector<std::future<InferenceResult>> futures;
  for (const auto& s : samples) futures.push_back(router.submit("m", clone(s)));
  {
    const RouterStats pre = router.stats();
    EXPECT_EQ(pre.models[0].replicas[0].pending,
              static_cast<std::size_t>(kRequests / 2));
    EXPECT_EQ(pre.models[0].replicas[1].pending,
              static_cast<std::size_t>(kRequests / 2));
  }

  std::thread client([&] {
    for (auto& f : futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_bitwise(futures[i].get(), oracle.topk[i], i);
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.models[0].replicas[0].requests +
                stats.models[0].replicas[1].requests,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.models[0].replicas[0].requests,
            static_cast<std::uint64_t>(kRequests / 2));
}

TEST(Router, KillingOneReplicaFailsOnlyItsQueueAndServingContinues) {
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(make_sample(800 + i));
  const TrainedOracle oracle = train_oracle(41, samples, 3);

  Router router;
  router.add_model(fleet_model("m", oracle.blob, 2, /*replicas=*/2));

  // Pre-serve: balance 3 requests onto each replica's queue, then poison
  // replica 1 before its loop ever runs — its queued requests must fail with
  // ReplicaKilledError, the others must still serve bitwise-correct.
  std::vector<std::future<InferenceResult>> futures;
  for (const auto& s : samples) futures.push_back(router.submit("m", clone(s)));
  router.kill_replica("m", 1);
  EXPECT_THROW(router.kill_replica("m", 7), Error);
  EXPECT_THROW(router.kill_replica("nope", 0), Error);

  // Submissions after the kill route to the survivor (the poisoned queue is
  // closed even before its loop observes the flag).
  std::vector<Tensor<float>> late;
  for (int i = 0; i < 4; ++i) late.push_back(make_sample(880 + i));
  const TrainedOracle late_oracle = train_oracle(41, late, 3);
  std::vector<std::future<InferenceResult>> late_futures;
  for (const auto& s : late) {
    late_futures.push_back(router.submit("m", clone(s)));
  }

  std::thread client([&] {
    for (auto& f : futures) f.wait();
    for (auto& f : late_futures) f.wait();
    router.shutdown();
  });
  comm::World world(router.total_ranks());
  world.run([&](comm::Comm& comm) { router.serve(comm); });
  client.join();

  // Replica 0's requests (even indices: depth balancing alternated, group 0
  // first) and all late ones served bitwise; replica 1's failed.
  int killed = 0, served = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const InferenceResult res = futures[i].get();
      expect_bitwise(res, oracle.topk[i], i);
      ++served;
    } catch (const ReplicaKilledError&) {
      ++killed;
    }
  }
  EXPECT_EQ(served, 3);
  EXPECT_EQ(killed, 3);
  for (std::size_t i = 0; i < late_futures.size(); ++i) {
    expect_bitwise(late_futures[i].get(), late_oracle.topk[i], i);
  }

  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.models[0].replicas.size(), 2u);
  EXPECT_FALSE(stats.models[0].replicas[0].dead);
  EXPECT_TRUE(stats.models[0].replicas[1].dead);
  EXPECT_EQ(stats.models[0].replicas[0].requests, 7u);  // 3 early + 4 late
  EXPECT_EQ(stats.models[0].replicas[1].requests, 0u);
  // With no live replica left to take work, admission control rejects.
  router.kill_replica("m", 0);
  EXPECT_THROW(router.submit("m", make_sample(1)), OverloadedError);
}

TEST(Router, RejectsInvalidRegistrations) {
  Router router;
  FleetModel no_tag = fleet_model("", "", 1, 1);
  EXPECT_THROW(router.add_model(std::move(no_tag)), Error);
  router.add_model(fleet_model("dup", "", 1, 1));
  FleetModel dup = fleet_model("dup", "", 1, 1);
  EXPECT_THROW(router.add_model(std::move(dup)), Error);
  FleetModel bad_replicas = fleet_model("r", "", 1, 1);
  bad_replicas.replicas = 0;
  EXPECT_THROW(router.add_model(std::move(bad_replicas)), Error);
}

}  // namespace
}  // namespace distconv::serve
