// End-to-end serving: train the single-rank oracle, checkpoint (v2), load
// into distributed serving models under sample / spatial / channel grids,
// and verify every dynamically batched request resolves to the oracle's
// exact top-k — bitwise, whatever batch its sample landed in (eval-mode
// operators are per-sample, so zero-padded slots are inert).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "serve/server.hpp"

namespace distconv::serve {
namespace {

using core::BatchNormMode;
using core::Mode;
using core::Model;
using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;

constexpr int kClasses = 6;
constexpr std::int64_t kBatch = 4;

NetworkSpec classifier_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{kBatch, 3, 16, 16});
  int x = nb.conv_bn_relu("b1", in, 8, 3);
  x = nb.pool_max("pool", x, 3, 2, 1);
  x = nb.conv_bn_relu("b2", x, 8, 3);
  x = nb.global_avg_pool("gap", x);
  x = nb.fully_connected("fc", x, kClasses, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_sample(std::uint64_t seed) {
  Tensor<float> t(Shape4{1, 3, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

/// Train the oracle, checkpoint it, and score each request sample alone
/// (slot 0, rest zero-padded): the reference top-k for any batching.
struct OracleServing {
  std::string blob;
  std::vector<std::vector<Prediction>> topk;  ///< per request sample
};

OracleServing run_oracle(const std::vector<Tensor<float>>& samples, int top_k) {
  OracleServing oracle;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    Rng rng(17);
    for (int step = 0; step < 3; ++step) {
      Tensor<float> x(in_shape);
      x.fill_uniform(rng, -1.0f, 1.0f);
      std::vector<int> labels;
      for (std::int64_t n = 0; n < in_shape.n; ++n) {
        labels.push_back(static_cast<int>(rng.uniform() * kClasses) % kClasses);
      }
      model.set_input(0, x);
      model.forward();
      model.loss_softmax(labels);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    std::ostringstream out;
    core::save_checkpoint(model, out);
    oracle.blob = out.str();

    for (const auto& s : samples) {
      Tensor<float> input(in_shape);
      input.zero();
      std::copy(s.data(), s.data() + s.size(), input.data());
      model.set_input(0, input);
      model.forward(Mode::kInference);
      const Tensor<float> logits = model.gather_output(model.output_layer());
      oracle.topk.push_back(topk_softmax(logits.data(), kClasses, top_k));
    }
  });
  return oracle;
}

struct GridCase {
  const char* name;
  int ranks;
  std::function<Strategy(const NetworkSpec&)> make;
};

std::vector<GridCase> grid_cases() {
  return {
      {"sample4", 4,
       [](const NetworkSpec& spec) {
         return Strategy::sample_parallel(spec.size(), 4);
       }},
      {"spatial_then_sample", 4,
       [](const NetworkSpec& spec) {
         // Convs spatially decomposed; the classifier head (GAP output is
         // (N, C, 1, 1)) shuffles to a sample-parallel grid for the FC.
         Strategy s =
             Strategy::uniform(spec.size(), ProcessGrid{1, 1, 2, 2});
         s.grids[spec.size() - 1] = ProcessGrid{4, 1, 1, 1};
         return s;
       }},
      {"channel_then_sample", 4,
       [](const NetworkSpec& spec) {
         Strategy s =
             Strategy::uniform(spec.size(), ProcessGrid{2, 2, 1, 1});
         s.grids[spec.size() - 2] = ProcessGrid{4, 1, 1, 1};  // gap
         s.grids[spec.size() - 1] = ProcessGrid{4, 1, 1, 1};  // fc
         return s;
       }},
  };
}

TEST(Server, BatchedRequestsMatchOracleBitwiseUnderAllGrids) {
  constexpr int kRequests = 10;
  std::vector<Tensor<float>> samples;
  for (int i = 0; i < kRequests; ++i) samples.push_back(make_sample(900 + i));

  ServeOptions opts;
  opts.batcher.max_batch = static_cast<int>(kBatch);
  opts.batcher.max_delay_us = 500;
  opts.top_k = 3;
  const OracleServing oracle = run_oracle(samples, opts.top_k);

  for (const auto& gc : grid_cases()) {
    SCOPED_TRACE(gc.name);
    Server server(opts);
    std::vector<std::future<InferenceResult>> futures;
    std::thread client([&] {
      for (const auto& s : samples) {
        Tensor<float> copy(s.shape());
        std::copy(s.data(), s.data() + s.size(), copy.data());
        futures.push_back(server.submit(std::move(copy)));
      }
      for (auto& f : futures) f.wait();
      server.shutdown();
    });
    comm::World world(gc.ranks);
    world.run([&](comm::Comm& comm) {
      const NetworkSpec spec = classifier_net();
      Model model(spec, comm, gc.make(spec), /*seed=*/21);
      std::istringstream in(oracle.blob);
      core::load_checkpoint(model, in);
      server.serve(model);
    });
    client.join();

    ASSERT_EQ(futures.size(), samples.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const InferenceResult res = futures[i].get();
      ASSERT_EQ(res.topk.size(), oracle.topk[i].size()) << "request " << i;
      for (std::size_t k = 0; k < res.topk.size(); ++k) {
        EXPECT_EQ(res.topk[k].cls, oracle.topk[i][k].cls)
            << "request " << i << " rank " << k;
        EXPECT_EQ(res.topk[k].prob, oracle.topk[i][k].prob)
            << "request " << i << " rank " << k;
      }
      EXPECT_GE(res.latency_seconds, 0.0);
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
    EXPECT_GE(stats.batches,
              static_cast<std::uint64_t>(kRequests) / kBatch);
    EXPECT_GT(stats.mean_batch_fill, 0.0);
    EXPECT_LE(stats.mean_batch_fill, double(kBatch));
    EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
  }
}

TEST(Server, ConcurrentClientsAllComplete) {
  ServeOptions opts;
  opts.batcher.max_batch = static_cast<int>(kBatch);
  opts.batcher.max_delay_us = 200;
  opts.top_k = 2;
  Server server(opts);

  constexpr int kClients = 3;
  constexpr int kPerClient = 5;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> done{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futures[c].push_back(server.submit(make_sample(7000 + c * 100 + i)));
      }
      for (auto& f : futures[c]) f.wait();
      if (done.fetch_add(1) + 1 == kClients) server.shutdown();
    });
  }
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 4), 5);
    server.serve(model);
  });
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (auto& f : futures[c]) {
      const InferenceResult res = f.get();
      ASSERT_EQ(res.topk.size(), 2u);
      // Probabilities are a valid, sorted distribution prefix.
      EXPECT_GE(res.topk[0].prob, res.topk[1].prob);
      EXPECT_GT(res.topk[0].prob, 0.0f);
      EXPECT_LE(double(res.topk[0].prob) + res.topk[1].prob, 1.0 + 1e-6);
    }
  }
  EXPECT_EQ(server.stats().requests,
            static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(Server, MalformedRequestFailsItsFutureWithoutWedgingTheLoop) {
  ServeOptions opts;
  opts.batcher.max_batch = 2;
  opts.batcher.max_delay_us = 200;
  Server server(opts);

  std::future<InferenceResult> bad, good;
  std::thread client([&] {
    Tensor<float> wrong(Shape4{1, 3, 8, 8});  // model expects 16×16
    wrong.fill(1.0f);
    bad = server.submit(std::move(wrong));
    good = server.submit(make_sample(31337));
    good.wait();
    server.shutdown();
  });
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = classifier_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 4), 5);
    server.serve(model);
  });
  client.join();

  EXPECT_THROW(bad.get(), Error);
  const InferenceResult res = good.get();  // must not throw
  EXPECT_FALSE(res.topk.empty());
  EXPECT_EQ(server.stats().requests, 1u);  // the rejected request never served
}

TEST(Server, DyingServeLoopFailsQueuedFuturesInsteadOfHanging) {
  // A model whose head is not (N, classes, 1, 1) makes serve() throw during
  // setup; the queued request's future must carry the error (not block
  // forever) and the world must rethrow.
  ServeOptions opts;
  opts.batcher.max_delay_us = 0;
  Server server(opts);
  std::future<InferenceResult> fut = server.submit(make_sample(1));
  comm::World world(1);
  EXPECT_THROW(world.run([&](comm::Comm& comm) {
                 NetworkBuilder nb;
                 const int in = nb.input(Shape4{2, 3, 8, 8});
                 nb.conv("head", in, 4, 3, 1);  // spatial output
                 const NetworkSpec spec = nb.take();
                 Model model(spec, comm,
                             Strategy::sample_parallel(spec.size(), 1), 1);
                 server.serve(model);
               }),
               Error);
  EXPECT_THROW(fut.get(), Error);
  EXPECT_TRUE(server.batcher().closed());
}

TEST(TopkSoftmax, DeterministicOrderAndProbabilities) {
  const float logits[5] = {1.0f, 3.0f, 3.0f, -2.0f, 0.5f};
  const auto topk = topk_softmax(logits, 5, 3);
  ASSERT_EQ(topk.size(), 3u);
  EXPECT_EQ(topk[0].cls, 1);  // tie with class 2 broken by lower index
  EXPECT_EQ(topk[1].cls, 2);
  EXPECT_EQ(topk[2].cls, 0);
  EXPECT_EQ(topk[0].prob, topk[1].prob);
  double sum = 0;
  for (const auto& p : topk) sum += p.prob;
  EXPECT_LE(sum, 1.0 + 1e-6);
  // k clamps to the class count.
  EXPECT_EQ(topk_softmax(logits, 5, 50).size(), 5u);
}

}  // namespace
}  // namespace distconv::serve
