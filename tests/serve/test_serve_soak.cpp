// Serving soak (ctest label "soak" — excluded from the PR lane, run by the
// scheduled serve-soak CI job under TSan): Poisson open-loop clients against
// a two-replica router with a deadline policy while a seeded fault plan
// kills a random rank mid-serve. The invariants are liveness-shaped, the
// kind that only show up under sustained concurrent load:
//   - the process neither hangs nor crashes (watchdog unsticks the dead
//     group's peers; containment keeps the world alive),
//   - every submitted future resolves — with a bitwise-correct result or a
//     typed error (ReplicaKilledError / RankFailedError / CommTimeoutError /
//     DeadlineExceededError / OverloadedError),
//   - across the soak, requests are actually served and kills actually fire.
// DC_SOAK_SECONDS scales the wall-clock budget (default a few seconds so
// the test stays runnable by hand; the nightly job raises it).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "comm/faults.hpp"
#include "comm/mailbox.hpp"
#include "core/checkpoint.hpp"
#include "core/layers.hpp"
#include "core/model.hpp"
#include "serve/router.hpp"

namespace distconv::serve {
namespace {

using core::Model;
using core::NetworkBuilder;
using core::NetworkSpec;
using core::Strategy;

constexpr int kClasses = 4;
constexpr std::int64_t kBatch = 4;
constexpr int kWorld = 4;        // 2 replicas × 2 ranks
constexpr int kGroupRanks = 2;
constexpr int kRequestsPerRun = 40;
constexpr int kSamplePool = 8;

NetworkSpec soak_net() {
  NetworkBuilder nb;
  const int in = nb.input(Shape4{kBatch, 3, 8, 8});
  int x = nb.conv_bn_relu("b1", in, 8, 3);
  x = nb.global_avg_pool("gap", x);
  x = nb.fully_connected("fc", x, kClasses, /*bias=*/true);
  return nb.take();
}

Tensor<float> make_sample(std::uint64_t seed) {
  Tensor<float> t(Shape4{1, 3, 8, 8});
  Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

Tensor<float> clone(const Tensor<float>& t) {
  Tensor<float> copy(t.shape());
  std::copy(t.data(), t.data() + t.size(), copy.data());
  return copy;
}

double soak_seconds() {
  if (const char* env = std::getenv("DC_SOAK_SECONDS")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 3.0;
}

struct Oracle {
  std::string blob;
  std::vector<std::vector<Prediction>> topk;  // one per pool sample
};

Oracle train_oracle(const std::vector<Tensor<float>>& pool) {
  Oracle oracle;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    const NetworkSpec spec = soak_net();
    Model model(spec, comm, Strategy::sample_parallel(spec.size(), 1), 7);
    const Shape4 in_shape = model.rt(0).out_shape;
    Rng rng(51);
    for (int step = 0; step < 3; ++step) {
      Tensor<float> x(in_shape);
      x.fill_uniform(rng, -1.0f, 1.0f);
      std::vector<int> labels;
      for (std::int64_t n = 0; n < in_shape.n; ++n) {
        labels.push_back(static_cast<int>(rng.uniform() * kClasses) % kClasses);
      }
      model.set_input(0, x);
      model.forward();
      model.loss_softmax(labels);
      model.backward();
      model.sgd_step(kernels::SgdConfig{0.05f, 0.9f, 0.0f});
    }
    std::ostringstream out;
    core::save_checkpoint(model, out);
    oracle.blob = out.str();
    for (const auto& s : pool) {
      Tensor<float> input(in_shape);
      input.zero();
      std::copy(s.data(), s.data() + s.size(), input.data());
      model.set_input(0, input);
      model.forward(core::Mode::kInference);
      const Tensor<float> logits = model.gather_output(model.output_layer());
      oracle.topk.push_back(topk_softmax(logits.data(), kClasses, 3));
    }
  });
  return oracle;
}

/// Seeded random kill for the *serving* loops: site=coll (every collective
/// on a rank ticks it), not FaultPlan::random_kill's site=step, which only
/// the Trainer's step boundary reaches and a serving loop never does. The
/// occurrence offset skips past group-split/model-construction collectives
/// often enough that most kills land mid-serve, while low seeds still probe
/// the setup path (which fleet-level containment must also survive).
comm::faults::FaultPlan random_serve_kill(std::uint64_t seed) {
  std::uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  comm::faults::FaultSpec spec;
  spec.rank = static_cast<int>((s >> 33) % kWorld);
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  spec.site = comm::faults::FaultSite::kCollective;
  spec.at = 4 + (s >> 33) % 48;
  spec.action = comm::faults::FaultAction::kKill;
  comm::faults::FaultPlan plan;
  plan.add(spec);
  return plan;
}

struct RunTally {
  int served = 0;
  int failed = 0;    // typed distconv errors — acceptable under faults
  int rejected = 0;  // submit() itself refused (all replicas dead, ...)
};

/// One soak iteration: fresh router, fresh world, one seeded kill.
RunTally soak_run(const Oracle& oracle, const std::vector<Tensor<float>>& pool,
                  std::uint64_t seed) {
  comm::faults::install_fault_plan(random_serve_kill(seed));

  Router router;
  {
    NetworkSpec spec = soak_net();
    FleetModel fm;
    fm.tag = "soak";
    fm.strategy = Strategy::sample_parallel(spec.size(), kGroupRanks);
    fm.spec = std::move(spec);
    fm.checkpoint = oracle.blob;
    fm.opts.batcher.max_batch = static_cast<int>(kBatch);
    fm.opts.batcher.max_delay_us = 300;
    // Deadline policy: once a replica dies, anything stuck behind the
    // watchdog window must shed rather than wait forever.
    fm.opts.batcher.deadline_us = 2'000'000;
    fm.opts.top_k = 3;
    fm.replicas = 2;
    router.add_model(std::move(fm));
  }

  std::vector<std::future<InferenceResult>> futures;
  std::vector<int> sample_of;  // pool index per future, for the bitwise check
  std::thread client([&] {
    Rng rng(9000 + seed);
    for (int i = 0; i < kRequestsPerRun; ++i) {
      const int pick = static_cast<int>(rng.uniform() * kSamplePool) %
                       kSamplePool;
      try {
        futures.push_back(router.submit("soak", clone(pool[pick])));
        sample_of.push_back(pick);
      } catch (const Error&) {
        // Admission control refused (e.g. every replica already dead).
      }
      // Poisson arrivals, ~3.3k rps offered.
      const double gap_us = -300.0 * std::log(1.0 - rng.uniform() * 0.999);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(gap_us)));
    }
    for (auto& f : futures) f.wait();
    router.shutdown();
  });

  {
    // The watchdog is what turns "peer of a killed rank parked in a
    // collective" into a typed CommTimeoutError the containment path can
    // absorb. Generous: TSan slows everything down.
    comm::CommTimeoutGuard watchdog(3000);
    comm::World world(kWorld);
    world.run([&](comm::Comm& comm) { router.serve(comm); });
  }
  client.join();
  comm::faults::clear_fault_plan();

  RunTally tally;
  tally.rejected = kRequestsPerRun - static_cast<int>(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "seed " << seed << " request " << i << " never resolved";
    try {
      const InferenceResult res = futures[i].get();
      const auto& want = oracle.topk[static_cast<std::size_t>(sample_of[i])];
      EXPECT_EQ(res.topk.size(), want.size());
      for (std::size_t k = 0; k < res.topk.size() && k < want.size(); ++k) {
        EXPECT_EQ(res.topk[k].cls, want[k].cls)
            << "seed " << seed << " request " << i;
        EXPECT_EQ(res.topk[k].prob, want[k].prob)
            << "seed " << seed << " request " << i;
      }
      ++tally.served;
    } catch (const Error&) {
      ++tally.failed;  // killed / timed out / shed — all legitimate here
    }
  }
  return tally;
}

TEST(ServeSoak, RouterSurvivesRandomKillsUnderPoissonLoad) {
  std::vector<Tensor<float>> pool;
  for (int i = 0; i < kSamplePool; ++i) pool.push_back(make_sample(3000 + i));
  const Oracle oracle = train_oracle(pool);

  comm::faults::reset_fault_stats();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(soak_seconds());
  int total_served = 0;
  std::uint64_t seed = 0;
  // At least two iterations regardless of budget, then run the clock out.
  while (seed < 2 || std::chrono::steady_clock::now() < deadline) {
    const RunTally tally = soak_run(oracle, pool, seed);
    // Conservation: every request the client issued was accounted for.
    EXPECT_EQ(tally.served + tally.failed + tally.rejected, kRequestsPerRun)
        << "seed " << seed;
    total_served += tally.served;
    ++seed;
    if (::testing::Test::HasFatalFailure()) break;
  }
  // The soak is vacuous if nothing was ever served or no kill ever fired.
  EXPECT_GT(total_served, 0);
  EXPECT_GE(comm::faults::fault_stats().kills, 1u);
}

}  // namespace
}  // namespace distconv::serve
